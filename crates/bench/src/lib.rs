//! Benchmark and figure/table regeneration harness.
//!
//! One function per table/figure of the evaluation (see DESIGN.md's
//! experiment index). Each experiment runs real simulations, validates
//! every result against the workload references, and returns printable
//! rows; `cargo bench` (the `repro` bench target) regenerates the whole
//! evaluation, and `cargo run -p ts-bench --release --bin repro --
//! <experiment>` regenerates one.
//!
//! | Id | Reproduces |
//! |----|------------|
//! | `tbl_config` | architecture-parameter table |
//! | `tbl_workloads` | workload characteristics |
//! | `fig_overall` | headline speedup, Delta vs static-parallel |
//! | `fig_ablation` | per-mechanism breakdown |
//! | `fig_tiles` | tile-count scaling |
//! | `fig_grain` | task-granularity sweep |
//! | `fig_imbalance` | per-tile load distribution |
//! | `fig_noc` | DRAM/NoC traffic with and without multicast |
//! | `fig_policy` | scheduling-policy comparison |
//! | `fig_queue` | task-queue depth sensitivity |
//! | `fig_reconfig` | reconfiguration-cost sensitivity |
//! | `fig_window` | dispatcher lookahead-window ablation |
//! | `fig_prefetch` | stream prefetch-depth ablation |
//! | `fig_batch` | multicast batching-window ablation |
//! | `fig_spawn` | task-creation latency sensitivity |
//! | `fig_steal` | extension: work stealing vs work-aware dispatch |
//! | `fig_lanes` | extension: vector-lane scaling |
//! | `fig_timeline` | tile-occupancy sparklines over the run |
//! | `fig_faults` | fault injection: Delta recovery vs wedging baseline |
//! | `tbl_energy` | per-workload energy, Delta vs static |
//! | `tbl_area` | area breakdown + TaskStream overhead |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod golden;
pub mod profile;
mod table;
pub mod trace_report;

pub use table::Table;

use rayon::prelude::*;
use taskstream_model::Program;
use ts_delta::{oracle, Accelerator, DeltaConfig, RunError, RunReport};
use ts_workloads::Workload;

use std::sync::atomic::{AtomicBool, Ordering};

/// Harness-wide scheduler fast-path overrides (set from `repro
/// --no-active-set` / `--no-idle-skip`). Every run that goes through
/// [`run_validated`] applies them to its config, so a whole sweep can
/// be A/B-compared against dense ticking without touching the modelled
/// presets. Reports are bit-identical either way — the flags exist to
/// *measure* that and the wall-clock difference.
static FORCE_NO_ACTIVE_SET: AtomicBool = AtomicBool::new(false);
static FORCE_NO_IDLE_SKIP: AtomicBool = AtomicBool::new(false);
static FORCE_NO_TILE_EVENTS: AtomicBool = AtomicBool::new(false);

/// Disables simulator fast paths for every subsequent run in this
/// process (`active_set`, `idle_skip`, and/or `tile_events`).
pub fn disable_fast_paths(active_set: bool, idle_skip: bool, tile_events: bool) {
    FORCE_NO_ACTIVE_SET.store(active_set, Ordering::Relaxed);
    FORCE_NO_IDLE_SKIP.store(idle_skip, Ordering::Relaxed);
    FORCE_NO_TILE_EVENTS.store(tile_events, Ordering::Relaxed);
}

/// Applies the process-wide fast-path overrides to one run's config.
fn apply_forces(cfg: &mut DeltaConfig) {
    if FORCE_NO_ACTIVE_SET.load(Ordering::Relaxed) {
        cfg.active_set = false;
    }
    if FORCE_NO_IDLE_SKIP.load(Ordering::Relaxed) {
        cfg.idle_skip = false;
    }
    if FORCE_NO_TILE_EVENTS.load(Ordering::Relaxed) {
        cfg.tile_events = false;
    }
}

/// Runs one workload on one configuration and validates the result.
///
/// # Panics
///
/// Panics if the run errors, the result fails validation, or the
/// report violates a conservation invariant
/// ([`RunReport::check_conservation`]) — a harness that silently
/// benchmarks wrong answers would be worthless.
pub fn run_validated(wl: &dyn Workload, mut cfg: DeltaConfig, baseline_program: bool) -> RunReport {
    apply_forces(&mut cfg);
    let tiles = cfg.tiles;
    let mut program: Box<dyn Program> = if baseline_program {
        wl.make_baseline_program()
    } else {
        wl.make_program()
    };
    let report = Accelerator::new(cfg)
        .run(program.as_mut())
        .unwrap_or_else(|e| panic!("{} failed: {e}", wl.name()));
    wl.validate(&report)
        .unwrap_or_else(|e| panic!("{} produced wrong results: {e}", wl.name()));
    report
        .check_conservation(tiles)
        .unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
    profile::record(&report.profile);
    report
}

/// What a fault-injected run came to: completion (validated like any
/// other run) or a wedge — the machine stopped making progress before
/// finishing, which is the expected fate of the no-recovery baseline
/// once a tile it depends on fail-stops.
#[derive(Debug)]
pub enum FaultOutcome {
    /// The run finished; the report validated against the workload
    /// reference, the conservation invariants, and the untimed oracle.
    Completed(Box<RunReport>),
    /// The run hit its stall limit without completing.
    Wedged {
        /// Cycle at which the run gave up.
        cycles: u64,
    },
}

impl FaultOutcome {
    /// The completed report, if the run finished.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            FaultOutcome::Completed(r) => Some(r),
            FaultOutcome::Wedged { .. } => None,
        }
    }
}

/// Runs one workload on one fault-injected configuration.
///
/// Like [`run_validated`], but a stalled machine is a *result*
/// ([`FaultOutcome::Wedged`]) instead of a panic — `fig_faults` exists
/// to show the no-recovery baseline wedging. Completed runs are held to
/// a stricter bar than fault-free ones: on top of reference validation
/// and the conservation invariants, the final state must match the
/// untimed oracle, proving the injected faults perturbed timing only,
/// never function.
///
/// # Panics
///
/// Panics on any error other than a stall/cycle-limit timeout, or if a
/// completed run fails any of the three checks.
pub fn run_faulted(
    wl: &dyn Workload,
    mut cfg: DeltaConfig,
    baseline_program: bool,
) -> FaultOutcome {
    apply_forces(&mut cfg);
    let tiles = cfg.tiles;
    let make = || -> Box<dyn Program> {
        if baseline_program {
            wl.make_baseline_program()
        } else {
            wl.make_program()
        }
    };
    let mut program = make();
    let report = match Accelerator::new(cfg).run(program.as_mut()) {
        Ok(report) => report,
        Err(RunError::Timeout { cycles, .. }) => return FaultOutcome::Wedged { cycles },
        Err(e) => panic!("{} failed under faults: {e}", wl.name()),
    };
    wl.validate(&report)
        .unwrap_or_else(|e| panic!("{} produced wrong results under faults: {e}", wl.name()));
    report
        .check_conservation(tiles)
        .unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
    let truth = oracle::execute_untimed(make().as_mut())
        .unwrap_or_else(|e| panic!("{}: oracle rejected the program: {e}", wl.name()));
    oracle::check_equivalence(&report, &truth)
        .unwrap_or_else(|e| panic!("{} diverged from the oracle under faults: {e}", wl.name()));
    profile::record(&report.profile);
    FaultOutcome::Completed(Box::new(report))
}

/// Executes a fault-injected sweep grid on the global rayon pool,
/// returning outcomes **in job order** (same determinism argument as
/// [`run_grid`]).
pub fn run_grid_faulted(jobs: &[Job<'_>]) -> Vec<FaultOutcome> {
    jobs.par_iter()
        .map(|j| run_faulted(j.wl, j.cfg.clone(), j.baseline))
        .collect()
}

/// One cell of an experiment's sweep grid: a workload at one design
/// point, with the program formulation to use.
///
/// Experiments materialize their whole (workload × config × policy)
/// grid into `Vec<Job>` up front, then hand it to [`run_grid`]; the
/// job carries everything a run needs so execution order is free.
pub struct Job<'a> {
    /// The workload to simulate.
    pub wl: &'a dyn Workload,
    /// The design point, including the job's derived RNG seed.
    pub cfg: DeltaConfig,
    /// Use the static-parallel program formulation.
    pub baseline: bool,
}

impl<'a> Job<'a> {
    /// A run of the workload's natural (task-parallel) program.
    pub fn new(wl: &'a dyn Workload, cfg: DeltaConfig) -> Self {
        Job {
            wl,
            cfg,
            baseline: false,
        }
    }

    /// A run of the static-parallel program formulation.
    pub fn baseline(wl: &'a dyn Workload, cfg: DeltaConfig) -> Self {
        Job {
            wl,
            cfg,
            baseline: true,
        }
    }
}

/// Executes a materialized sweep grid on the global rayon pool and
/// returns the reports **in job order**.
///
/// Parallel output is byte-identical to `--jobs 1`: each job's RNG
/// streams derive from its own config (see
/// [`experiments::derive_seed`]), never from iteration order, and the
/// order-preserving collect keeps report `i` paired with job `i`
/// regardless of which worker ran it.
pub fn run_grid(jobs: &[Job<'_>]) -> Vec<RunReport> {
    jobs.par_iter()
        .map(|j| run_validated(j.wl, j.cfg.clone(), j.baseline))
        .collect()
}

/// Formats a ratio as `x.xx×`. Rendering detail of the experiment
/// tables, not part of the harness API.
pub(crate) fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}
