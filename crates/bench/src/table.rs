//! Plain-text table rendering for the repro harness.

use std::fmt;

/// A simple left/right-aligned text table.
///
/// # Examples
///
/// ```
/// use ts_bench::Table;
///
/// let mut t = Table::new(&["workload", "speedup"]);
/// t.row(vec!["spmv".into(), "1.40x".into()]);
/// let s = t.to_string();
/// assert!(s.contains("spmv"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Rebuilds a table from previously captured parts (e.g. a golden
    /// document) — the inverse of [`Table::headers`]/[`Table::rows`].
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from the header count.
    pub fn from_parts(headers: Vec<String>, rows: Vec<Vec<String>>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), headers.len(), "row width must match headers");
        }
        Table { headers, rows }
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, row-major.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.headers.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c == 0 {
                    write!(f, "  {cell:<w$}", w = width[c])?;
                } else {
                    write!(f, "  {cell:>w$}", w = width[c])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        writeln!(f, "  {}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].contains("name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
