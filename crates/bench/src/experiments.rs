//! The experiments: one function per table/figure.
//!
//! Every experiment follows the same two-phase shape: *materialize*
//! the full (workload × config × policy) grid into a job list, then
//! *execute* it with [`run_grid`] on the global rayon pool and
//! assemble the table from the order-preserved results. Per-job RNG
//! seeds derive from [`SEED`] plus a stable job key ([`derive_seed`]),
//! so `repro --jobs N` output is byte-identical to `--jobs 1`.

use crate::golden::GoldenDoc;
use crate::{fmt_x, run_faulted, run_grid, run_grid_faulted, FaultOutcome, Job, Table};
use taskstream_model::Policy;
use ts_delta::{area, DeltaConfig, FaultsConfig, Features, RunReport};
use ts_sim::stats::geomean;
use ts_workloads::{
    bfs::Bfs, dtree::DTree, gemm::Gemm, hash_join::HashJoin, kmeans::KMeans, merge_sort::MergeSort,
    spmv::Spmv, suite, Scale, Workload,
};

/// Default experiment seed (all experiments are reproducible from it).
pub const SEED: u64 = 42;

/// Paper-scale tile count.
pub const TILES: usize = 8;

/// Stable per-job seed: folds a job key (the workload name) into the
/// experiment seed with FNV-1a, so a run's RNG streams depend on
/// *what* it is, not on where sweep iteration order placed it. This is
/// what makes a parallel sweep byte-identical to a serial one: no job
/// inherits RNG state from the jobs that happened to run before it.
///
/// The key is the workload name alone (not the design point), so every
/// design-point sweep over one workload shares a seed — and therefore
/// shares CGRA mapping-cache entries, which are keyed on
/// `(fabric, DFG, seed)`.
pub fn derive_seed(base: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A design point with the job's derived seed applied.
fn seeded(cfg: DeltaConfig, wl: &dyn Workload) -> DeltaConfig {
    cfg.to_builder().seed(derive_seed(SEED, wl.name())).build()
}

/// Result of the headline experiment.
#[derive(Debug)]
pub struct Overall {
    /// The printable table.
    pub table: Table,
    /// Geomean speedup over the whole suite.
    pub geomean: f64,
    /// Geomean over the irregular (task-parallel-native) subset.
    pub irregular_geomean: f64,
}

/// `fig_overall` — the headline: Delta vs. the equivalent
/// static-parallel design, per workload.
pub fn fig_overall(scale: Scale) -> Overall {
    let wls = suite(scale, SEED);
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(Job::baseline(
            wl.as_ref(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&[
        "workload",
        "delta cyc",
        "static cyc",
        "speedup",
        "delta imb",
        "static imb",
    ]);
    let mut speedups = Vec::new();
    let mut irregular = Vec::new();
    for (wl, pair) in wls.iter().zip(results.chunks(2)) {
        let (d, s) = (&pair[0], &pair[1]);
        let sp = s.cycles as f64 / d.cycles as f64;
        speedups.push(sp);
        if matches!(
            wl.name(),
            "bfs" | "sssp" | "dtree" | "merge_sort" | "spmv" | "hash_join" | "tri_count"
        ) {
            irregular.push(sp);
        }
        table.row(vec![
            wl.name().into(),
            d.cycles.to_string(),
            s.cycles.to_string(),
            fmt_x(sp),
            format!("{:.2}", d.load_imbalance()),
            format!("{:.2}", s.load_imbalance()),
        ]);
    }
    let g = geomean(&speedups);
    let gi = geomean(&irregular);
    table.row(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        fmt_x(g),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "geomean (irregular)".into(),
        "-".into(),
        "-".into(),
        fmt_x(gi),
        "-".into(),
        "-".into(),
    ]);
    Overall {
        table,
        geomean: g,
        irregular_geomean: gi,
    }
}

/// `fig_ablation` — cumulative mechanism breakdown. Speedups are
/// relative to the static-parallel design running the static program
/// formulation:
/// `+tasks` = task-parallel program on static placement;
/// `+balance` = work-aware placement; `+pipeline` = direct pipes;
/// `+multicast` = shared-read recovery (= Delta).
pub fn fig_ablation(scale: Scale) -> Table {
    let steps: [(&str, Features, Policy); 4] = [
        ("+tasks", Features::none(), Policy::StaticHash),
        (
            "+balance",
            Features {
                work_aware: true,
                pipelining: false,
                multicast: false,
            },
            Policy::WorkAware,
        ),
        (
            "+pipeline",
            Features {
                work_aware: true,
                pipelining: true,
                multicast: false,
            },
            Policy::WorkAware,
        ),
        ("+multicast", Features::all(), Policy::WorkAware),
    ];
    let wls = suite(scale, SEED);
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::baseline(
            wl.as_ref(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
        for (_, features, policy) in steps {
            let cfg = DeltaConfig::static_parallel(TILES)
                .with_policy(policy)
                .with_features(features);
            jobs.push(Job::new(wl.as_ref(), seeded(cfg, wl.as_ref())));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&[
        "workload",
        "static",
        "+tasks",
        "+balance",
        "+pipeline",
        "+multicast",
    ]);
    for (wl, group) in wls.iter().zip(results.chunks(1 + steps.len())) {
        let base = &group[0];
        let mut cells = vec![wl.name().to_string(), "1.00x".to_string()];
        for r in &group[1..] {
            cells.push(fmt_x(base.cycles as f64 / r.cycles as f64));
        }
        table.row(cells);
    }
    table
}

/// `fig_tiles` — tile-count scaling, Delta vs static-parallel.
pub fn fig_tiles(scale: Scale, tile_counts: &[usize]) -> Table {
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Box::new(Spmv::tiny(SEED)),
            Box::new(Bfs::tiny(SEED)),
            Box::new(DTree::tiny(SEED)),
            Box::new(Gemm::tiny(SEED)),
        ],
        Scale::Small => vec![
            Box::new(Spmv::small(SEED)),
            Box::new(Bfs::small(SEED)),
            Box::new(DTree::small(SEED)),
            Box::new(Gemm::small(SEED)),
        ],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &t in tile_counts {
            jobs.push(Job::new(
                wl.as_ref(),
                seeded(DeltaConfig::delta(t), wl.as_ref()),
            ));
            jobs.push(Job::baseline(
                wl.as_ref(),
                seeded(DeltaConfig::static_parallel(t), wl.as_ref()),
            ));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "tiles", "delta cyc", "static cyc", "speedup"]);
    let mut res = results.iter();
    for wl in &wls {
        for &t in tile_counts {
            let d = res.next().unwrap();
            let s = res.next().unwrap();
            table.row(vec![
                wl.name().into(),
                t.to_string(),
                d.cycles.to_string(),
                s.cycles.to_string(),
                fmt_x(s.cycles as f64 / d.cycles as f64),
            ]);
        }
    }
    table
}

/// `fig_grain` — task-granularity sweep (SpMV rows per task).
pub fn fig_grain(scale: Scale) -> Table {
    let grains: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
    let (n, max_row) = match scale {
        Scale::Tiny => (256, 64),
        Scale::Small => (2048, 2048),
    };
    let wls: Vec<Spmv> = grains
        .iter()
        .map(|&g| Spmv::new(n, max_row, g, SEED))
        .collect();
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::new(wl, seeded(DeltaConfig::delta(TILES), wl)));
        jobs.push(Job::baseline(
            wl,
            seeded(DeltaConfig::static_parallel(TILES), wl),
        ));
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["rows/task", "tasks", "delta cyc", "static cyc", "speedup"]);
    for ((&g, wl), pair) in grains.iter().zip(&wls).zip(results.chunks(2)) {
        let (d, s) = (&pair[0], &pair[1]);
        table.row(vec![
            g.to_string(),
            wl.info().tasks.to_string(),
            d.cycles.to_string(),
            s.cycles.to_string(),
            fmt_x(s.cycles as f64 / d.cycles as f64),
        ]);
    }
    table
}

/// `fig_imbalance` — per-tile busy cycles under both designs.
pub fn fig_imbalance(scale: Scale) -> Table {
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(Spmv::tiny(SEED)), Box::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Box::new(Spmv::small(SEED)), Box::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(Job::baseline(
            wl.as_ref(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&[
        "workload",
        "design",
        "per-tile busy (max/mean)",
        "imbalance",
    ]);
    let mut res = results.iter();
    for wl in &wls {
        for design in ["delta", "static"] {
            let r = res.next().unwrap();
            let busy = r.tile_busy();
            let max = busy.iter().cloned().fold(0.0f64, f64::max);
            let mean = busy.iter().sum::<f64>() / busy.len() as f64;
            table.row(vec![
                wl.name().into(),
                design.into(),
                format!("{max:.0}/{mean:.0}"),
                format!("{:.2}", r.load_imbalance()),
            ]);
        }
    }
    table
}

/// `fig_noc` — DRAM words and NoC flit-hops with and without multicast.
pub fn fig_noc(scale: Scale) -> Table {
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Box::new(DTree::tiny(SEED)),
            Box::new(KMeans::tiny(SEED)),
            Box::new(HashJoin::tiny(SEED)),
        ],
        Scale::Small => vec![
            Box::new(DTree::small(SEED)),
            Box::new(KMeans::small(SEED)),
            Box::new(HashJoin::small(SEED)),
        ],
    };
    let unicast = Features {
        work_aware: true,
        pipelining: true,
        multicast: false,
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(
                DeltaConfig::delta(TILES).with_features(unicast),
                wl.as_ref(),
            ),
        ));
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&[
        "workload",
        "dram rd (mc)",
        "dram rd (uni)",
        "saved",
        "hops (mc)",
        "hops (uni)",
    ]);
    for (wl, pair) in wls.iter().zip(results.chunks(2)) {
        let (with, without) = (&pair[0], &pair[1]);
        let rd_mc = with.stats.get_or_zero("dram.read_words");
        let rd_uni = without.stats.get_or_zero("dram.read_words");
        table.row(vec![
            wl.name().into(),
            format!("{rd_mc:.0}"),
            format!("{rd_uni:.0}"),
            format!("{:.0}%", 100.0 * (1.0 - rd_mc / rd_uni.max(1.0))),
            format!("{:.0}", with.noc_hops()),
            format!("{:.0}", without.noc_hops()),
        ]);
    }
    table
}

/// `fig_policy` — placement-policy comparison on skewed workloads
/// (other mechanisms held on). Cells are slowdown relative to
/// work-aware; `least-queued` isolates the value of the *work* hint
/// (it balances task counts but not task sizes).
pub fn fig_policy(scale: Scale) -> Table {
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(Spmv::tiny(SEED)), Box::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Box::new(Spmv::small(SEED)), Box::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(
                DeltaConfig::delta(TILES).with_policy(Policy::WorkAware),
                wl.as_ref(),
            ),
        ));
        for pol in Policy::ALL {
            jobs.push(Job::new(
                wl.as_ref(),
                seeded(DeltaConfig::delta(TILES).with_policy(pol), wl.as_ref()),
            ));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&[
        "workload",
        "work-aware",
        "least-queued",
        "round-robin",
        "random",
        "static-hash",
    ]);
    for (wl, group) in wls.iter().zip(results.chunks(1 + Policy::ALL.len())) {
        let base = &group[0];
        let mut cells = vec![wl.name().to_string()];
        for r in &group[1..] {
            cells.push(fmt_x(r.cycles as f64 / base.cycles as f64));
        }
        table.row(cells);
    }
    table
}

/// `fig_window` — dispatcher lookahead-window ablation (a design
/// choice of this implementation: how far into the pending queue the
/// dispatcher searches for ready/placeable tasks, multicast sharers and
/// pipe chains).
pub fn fig_window(scale: Scale) -> Table {
    let windows: &[usize] = &[1, 4, 16, 32, 64];
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(DTree::tiny(SEED)), Box::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Box::new(DTree::small(SEED)), Box::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &w in std::iter::once(&32usize).chain(windows) {
            jobs.push(Job::new(
                wl.as_ref(),
                seeded(
                    DeltaConfig::builder(TILES).dispatch_window(w).build(),
                    wl.as_ref(),
                ),
            ));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "window", "cycles", "vs 32"]);
    for (wl, group) in wls.iter().zip(results.chunks(1 + windows.len())) {
        let base = &group[0];
        for (&w, r) in windows.iter().zip(&group[1..]) {
            table.row(vec![
                wl.name().into(),
                w.to_string(),
                r.cycles.to_string(),
                fmt_x(base.cycles as f64 / r.cycles as f64),
            ]);
        }
    }
    table
}

/// `fig_prefetch` — stream prefetch-depth ablation (how many queue
/// positions may issue DRAM streams; deep prefetch steals bandwidth
/// from the running task).
pub fn fig_prefetch(scale: Scale) -> Table {
    let depths: &[usize] = &[1, 2, 4];
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(Spmv::tiny(SEED)), Box::new(Gemm::tiny(SEED))],
        Scale::Small => vec![Box::new(Spmv::small(SEED)), Box::new(Gemm::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &d in std::iter::once(&2usize).chain(depths) {
            jobs.push(Job::new(
                wl.as_ref(),
                seeded(
                    DeltaConfig::builder(TILES).prefetch_depth(d).build(),
                    wl.as_ref(),
                ),
            ));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "depth", "cycles", "vs 2"]);
    for (wl, group) in wls.iter().zip(results.chunks(1 + depths.len())) {
        let base = &group[0];
        for (&d, r) in depths.iter().zip(&group[1..]) {
            table.row(vec![
                wl.name().into(),
                d.to_string(),
                r.cycles.to_string(),
                fmt_x(base.cycles as f64 / r.cycles as f64),
            ]);
        }
    }
    table
}

/// `fig_batch` — multicast batching-window ablation (how long a shared
/// read waits for sharers to join before it starts streaming).
pub fn fig_batch(scale: Scale) -> Table {
    let windows: &[u64] = &[0, 8, 24, 64, 256];
    let wl: Box<dyn Workload> = match scale {
        Scale::Tiny => Box::new(DTree::tiny(SEED)),
        Scale::Small => Box::new(DTree::small(SEED)),
    };
    let mut jobs = Vec::new();
    for &w in std::iter::once(&24u64).chain(windows) {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(
                DeltaConfig::builder(TILES).mcast_batch_window(w).build(),
                wl.as_ref(),
            ),
        ));
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["window cyc", "cycles", "dram reads", "vs 24"]);
    let base = &results[0];
    for (&w, r) in windows.iter().zip(&results[1..]) {
        table.row(vec![
            w.to_string(),
            r.cycles.to_string(),
            format!("{:.0}", r.stats.get_or_zero("dram.read_words")),
            fmt_x(base.cycles as f64 / r.cycles as f64),
        ]);
    }
    table
}

/// `fig_spawn` — task-creation overhead sensitivity (spawn + host
/// notification latency sweep). Dynamically spawning workloads feel
/// this; statically spawned ones shrug it off.
pub fn fig_spawn(scale: Scale) -> Table {
    let latencies: &[u64] = &[0, 12, 48, 192, 768];
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(Bfs::tiny(SEED)), Box::new(Spmv::tiny(SEED))],
        Scale::Small => vec![Box::new(Bfs::small(SEED)), Box::new(Spmv::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &lat in latencies {
            jobs.push(Job::new(
                wl.as_ref(),
                seeded(
                    DeltaConfig::builder(TILES)
                        .spawn_latency(lat)
                        .host_latency(lat)
                        .build(),
                    wl.as_ref(),
                ),
            ));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "latency", "cycles", "slowdown"]);
    for (wl, group) in wls.iter().zip(results.chunks(latencies.len())) {
        let base = group[0].cycles;
        for (&lat, r) in latencies.iter().zip(group) {
            table.row(vec![
                wl.name().into(),
                lat.to_string(),
                r.cycles.to_string(),
                fmt_x(r.cycles as f64 / base as f64),
            ]);
        }
    }
    table
}

/// `fig_queue` — tile task-queue depth sensitivity (Delta).
pub fn fig_queue(scale: Scale) -> Table {
    let depths: &[usize] = &[1, 2, 4, 8];
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(Spmv::tiny(SEED)), Box::new(HashJoin::tiny(SEED))],
        Scale::Small => vec![Box::new(Spmv::small(SEED)), Box::new(HashJoin::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &depth in std::iter::once(&4usize).chain(depths) {
            jobs.push(Job::new(
                wl.as_ref(),
                seeded(
                    DeltaConfig::builder(TILES).tile_queue(depth).build(),
                    wl.as_ref(),
                ),
            ));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "depth", "cycles", "vs depth=4"]);
    for (wl, group) in wls.iter().zip(results.chunks(1 + depths.len())) {
        let base = &group[0];
        for (&depth, r) in depths.iter().zip(&group[1..]) {
            table.row(vec![
                wl.name().into(),
                depth.to_string(),
                r.cycles.to_string(),
                fmt_x(base.cycles as f64 / r.cycles as f64),
            ]);
        }
    }
    table
}

/// `fig_reconfig` — reconfiguration-cost sensitivity (workloads with
/// multiple task types sharing tiles).
pub fn fig_reconfig(scale: Scale) -> Table {
    let costs: &[u64] = &[0, 2, 8, 32, 128];
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Box::new(HashJoin::tiny(SEED)),
            Box::new(MergeSort::tiny(SEED)),
        ],
        Scale::Small => vec![
            Box::new(HashJoin::small(SEED)),
            Box::new(MergeSort::small(SEED)),
        ],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &c in costs {
            let cfg = DeltaConfig::builder(TILES).fabric_config_per_pe(c).build();
            jobs.push(Job::new(wl.as_ref(), seeded(cfg, wl.as_ref())));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "cfg cyc/PE", "delta cyc", "slowdown"]);
    for (wl, group) in wls.iter().zip(results.chunks(costs.len())) {
        let base = group[0].cycles;
        for (&c, r) in costs.iter().zip(group) {
            table.row(vec![
                wl.name().into(),
                c.to_string(),
                r.cycles.to_string(),
                fmt_x(r.cycles as f64 / base as f64),
            ]);
        }
    }
    table
}

/// `fig_steal` — extension study: can tile-side work stealing replace
/// (or add to) work-aware dispatch? Columns are cycles under: static
/// placement, static + stealing, work-aware, work-aware + stealing.
pub fn fig_steal(scale: Scale) -> Table {
    let combos = [
        (Policy::StaticHash, false),
        (Policy::StaticHash, true),
        (Policy::WorkAware, false),
        (Policy::WorkAware, true),
    ];
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(Spmv::tiny(SEED)), Box::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Box::new(Spmv::small(SEED)), Box::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for (policy, steal) in combos {
            let cfg = DeltaConfig::builder(TILES)
                .policy(policy)
                .work_stealing(steal)
                .build();
            jobs.push(Job::new(wl.as_ref(), seeded(cfg, wl.as_ref())));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&[
        "workload",
        "static",
        "static+steal",
        "work-aware",
        "work-aware+steal",
    ]);
    for (wl, group) in wls.iter().zip(results.chunks(combos.len())) {
        let mut cells = vec![wl.name().to_string()];
        for r in group {
            cells.push(r.cycles.to_string());
        }
        table.row(cells);
    }
    table
}

/// `tbl_workloads` — workload characteristics.
pub fn tbl_workloads(scale: Scale) -> Table {
    let mut table = Table::new(&["workload", "tasks", "elements", "grain", "stresses"]);
    for wl in suite(scale, SEED) {
        let i = wl.info();
        table.row(vec![
            i.name.into(),
            i.tasks.to_string(),
            i.elements.to_string(),
            i.grain.to_string(),
            i.stresses.into(),
        ]);
    }
    table
}

/// `tbl_config` — architecture parameters of the evaluated design.
pub fn tbl_config() -> Table {
    let c = DeltaConfig::delta(TILES);
    let (w, h) = c.mesh_dims();
    let mut table = Table::new(&["parameter", "value"]);
    let mut kv = |k: &str, v: String| table.row(vec![k.into(), v]);
    kv("tiles", c.tiles.to_string());
    kv(
        "fabric per tile",
        format!(
            "{}x{} PEs, mul/div every {}",
            c.fabric.rows, c.fabric.cols, c.fabric.muldiv_every
        ),
    );
    kv(
        "fabric reconfig",
        format!("{} cycles", c.fabric.config_cycles()),
    );
    kv(
        "scratchpad",
        format!("{} KiB @ {} acc/cyc", c.spad_words * 8 / 1024, c.spad_bw),
    );
    kv(
        "mesh",
        format!("{w}x{h} (tiles + {} mem ctrls)", c.mem_ctrls),
    );
    kv(
        "dram",
        format!(
            "{} w/cyc, {} cyc latency, gather x{}",
            c.dram.words_per_cycle, c.dram.latency, c.dram.gather_cost
        ),
    );
    kv("task queue/tile", c.tile_queue.to_string());
    kv(
        "dispatch",
        format!("{}/cyc, window {}", c.dispatch_per_cycle, c.dispatch_window),
    );
    kv(
        "spawn/host latency",
        format!("{}/{} cycles", c.spawn_latency, c.host_latency),
    );
    kv(
        "multicast batch window",
        format!("{} cycles", c.mcast_batch_window),
    );
    table
}

/// `fig_lanes` — vector-lane sweep (an extension of the fabric model:
/// up to `lanes` firings retire per cycle). Compute-bound workloads
/// scale until the memory system becomes the wall.
pub fn fig_lanes(scale: Scale) -> Table {
    let lanes: &[u32] = &[1, 2, 4, 8];
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Box::new(Gemm::tiny(SEED)),
            Box::new(DTree::tiny(SEED)),
            Box::new(Spmv::tiny(SEED)),
        ],
        Scale::Small => vec![
            Box::new(Gemm::small(SEED)),
            Box::new(DTree::small(SEED)),
            Box::new(Spmv::small(SEED)),
        ],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &l in lanes {
            let cfg = DeltaConfig::builder(TILES).fabric_lanes(l).build();
            jobs.push(Job::new(wl.as_ref(), seeded(cfg, wl.as_ref())));
        }
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "lanes", "cycles", "speedup vs 1"]);
    for (wl, group) in wls.iter().zip(results.chunks(lanes.len())) {
        let base = group[0].cycles;
        for (&l, r) in lanes.iter().zip(group) {
            table.row(vec![
                wl.name().into(),
                l.to_string(),
                r.cycles.to_string(),
                fmt_x(base as f64 / r.cycles as f64),
            ]);
        }
    }
    table
}

/// `fig_timeline` — tile-occupancy sparklines over the run (the classic
/// utilization figure): Delta keeps tiles busy; static placement shows
/// the straggler tail / sweep troughs.
pub fn fig_timeline(scale: Scale) -> Table {
    let wls: Vec<Box<dyn Workload>> = match scale {
        Scale::Tiny => vec![Box::new(Spmv::tiny(SEED)), Box::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Box::new(Spmv::small(SEED)), Box::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(Job::baseline(
            wl.as_ref(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "design", "occupancy over time"]);
    let mut res = results.iter();
    for wl in &wls {
        for design in ["delta", "static"] {
            let r = res.next().unwrap();
            table.row(vec![
                wl.name().into(),
                design.into(),
                r.sparkline(TILES, 64),
            ]);
        }
    }
    table
}

/// One `fig_faults` design point: the given preset with fault
/// injection scaled off a single knob — `rate` of the tiles fail-stop,
/// transient stalls hit each (tile, epoch) with the same probability,
/// and DRAM retries arrive at a quarter of it. Recovery is what the
/// experiment compares, so it is the one per-side difference.
fn fault_point(cfg: DeltaConfig, rate: f64, recovery: bool, window: u64) -> DeltaConfig {
    let faults = FaultsConfig {
        tile_fail_rate: rate,
        tile_fail_window: window,
        tile_stall_rate: rate,
        dram_retry_rate: rate / 4.0,
        recovery,
        watchdog_timeout: 8_000,
        ..FaultsConfig::none()
    };
    // Tight enough that a wedged baseline gives up quickly, loose
    // enough that recovery backoff (cap 4096) never trips it.
    cfg.to_builder().faults(faults).stall_limit(80_000).build()
}

/// `fig_faults` — graceful degradation under injected faults: Delta
/// with task-level recovery vs the static-parallel baseline, sweeping
/// the fault rate (see [`fault_point`]). Both sides see the *same*
/// seeded fault schedule; "lost" is the cycle cost relative to the
/// same design at rate 0. Delta routes around dead tiles and finishes
/// (every completed run also validates against the untimed oracle);
/// the baseline keeps hashing tasks onto a fail-stopped tile and
/// wedges, rendered as `wedged`.
pub fn fig_faults(scale: Scale) -> Table {
    let rates: &[f64] = &[0.0, 0.125, 0.25, 0.5];
    // fail-stop cycles are drawn from 1..=window; keep the window
    // inside the run so every swept rate actually injects
    let (wl, window): (Box<dyn Workload>, u64) = match scale {
        Scale::Tiny => (Box::new(Spmv::tiny(SEED)), 256),
        Scale::Small => (Box::new(Spmv::small(SEED)), 8192),
    };
    let mut jobs = Vec::new();
    for &r in rates {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(
                fault_point(DeltaConfig::delta(TILES), r, true, window),
                wl.as_ref(),
            ),
        ));
        jobs.push(Job::baseline(
            wl.as_ref(),
            seeded(
                fault_point(DeltaConfig::static_baseline(TILES), r, false, window),
                wl.as_ref(),
            ),
        ));
    }
    let results = run_grid_faulted(&jobs);

    let delta_base = results[0]
        .report()
        .expect("fault-free delta run cannot wedge")
        .cycles;
    let static_base = results[1]
        .report()
        .expect("fault-free baseline run cannot wedge")
        .cycles;
    let mut table = Table::new(&[
        "fail rate",
        "delta cyc",
        "delta lost",
        "redispatched",
        "static cyc",
        "static lost",
    ]);
    for (&r, pair) in rates.iter().zip(results.chunks(2)) {
        let d = pair[0]
            .report()
            .expect("delta with recovery must not wedge");
        let (s_cyc, s_lost) = match &pair[1] {
            FaultOutcome::Completed(s) => (
                s.cycles.to_string(),
                s.cycles.saturating_sub(static_base).to_string(),
            ),
            FaultOutcome::Wedged { .. } => ("wedged".into(), "wedged".into()),
        };
        table.row(vec![
            format!("{r:.3}"),
            d.cycles.to_string(),
            d.cycles.saturating_sub(delta_base).to_string(),
            d.faults.tasks_redispatched.to_string(),
            s_cyc,
            s_lost,
        ]);
    }
    table
}

/// Output of `repro faults <experiment>`: one chaos-preset run of the
/// experiment's representative workload, completed, validated, and
/// summarized (see [`fault_run`]).
#[derive(Debug)]
pub struct FaultRun {
    /// The validated report, `report.faults` populated.
    pub report: RunReport,
    /// Name of the workload that ran.
    pub workload: String,
    /// Printable injection/recovery summary.
    pub summary: Table,
}

/// Runs one representative workload of experiment `id` under the
/// all-faults chaos preset ([`FaultsConfig::chaos`], every fault class
/// active, recovery on) and returns the validated report plus a
/// summary table. `fail_rate` overrides the preset's tile fail-stop
/// rate. The workload choice mirrors [`trace_run`].
///
/// # Panics
///
/// Panics on an unknown id, if the run wedges (recovery exists to
/// prevent exactly that), or if the completed run fails validation,
/// conservation, or oracle equivalence.
pub fn fault_run(id: &str, scale: Scale, fail_rate: Option<f64>) -> FaultRun {
    assert!(
        ALL.contains(&id),
        "unknown experiment '{id}' (known: {ALL:?})"
    );
    let wl: Box<dyn Workload> = match (id, scale) {
        ("fig_noc" | "fig_batch", Scale::Tiny) => Box::new(DTree::tiny(SEED)),
        ("fig_noc" | "fig_batch", Scale::Small) => Box::new(DTree::small(SEED)),
        ("fig_steal", Scale::Tiny) => Box::new(MergeSort::tiny(SEED)),
        ("fig_steal", Scale::Small) => Box::new(MergeSort::small(SEED)),
        (_, Scale::Tiny) => Box::new(Spmv::tiny(SEED)),
        (_, Scale::Small) => Box::new(Spmv::small(SEED)),
    };
    let faults = FaultsConfig {
        tile_fail_rate: fail_rate.unwrap_or(FaultsConfig::chaos().tile_fail_rate),
        // keep the fail-stop window inside the run at test scale so
        // the smoke actually exercises victimization and re-dispatch
        tile_fail_window: match scale {
            Scale::Tiny => 256,
            Scale::Small => 8192,
        },
        ..FaultsConfig::chaos()
    };
    let cfg = seeded(DeltaConfig::delta(TILES), wl.as_ref())
        .to_builder()
        .faults(faults)
        .stall_limit(200_000)
        .build();
    let report = match run_faulted(wl.as_ref(), cfg, false) {
        FaultOutcome::Completed(r) => *r,
        FaultOutcome::Wedged { cycles } => {
            panic!("chaos run of {id} wedged at cycle {cycles} despite recovery")
        }
    };
    let f = &report.faults;
    let mut summary = Table::new(&["metric", "value"]);
    let mut kv = |k: &str, v: String| summary.row(vec![k.into(), v]);
    kv("workload", wl.name().into());
    kv("cycles", report.cycles.to_string());
    kv("tasks completed", report.tasks_completed.to_string());
    kv("tile fail-stops", f.tile_fail_stops.to_string());
    kv("tile stalls", f.tile_stalls.to_string());
    kv(
        "noc flits lost",
        format!(
            "{} ({} dropped, {} corrupted)",
            f.noc_flits_dropped + f.noc_flits_corrupted,
            f.noc_flits_dropped,
            f.noc_flits_corrupted
        ),
    );
    kv("dram retries", f.dram_retries.to_string());
    kv("faults injected", f.injected().to_string());
    kv("watchdog fires", f.watchdog_fires.to_string());
    kv("tasks redispatched", f.tasks_redispatched.to_string());
    kv("pipe replays", f.pipe_replays.to_string());
    kv("backoff cycles", f.backoff_cycles.to_string());
    kv("wasted cycles", f.wasted_cycles.to_string());
    kv("cycles lost to recovery", f.cycles_lost().to_string());
    FaultRun {
        workload: wl.name().to_string(),
        report,
        summary,
    }
}

/// `tbl_energy` — per-workload energy, Delta vs static-parallel
/// (analytical event-energy model; see `ts_delta::energy`).
pub fn tbl_energy(scale: Scale) -> Table {
    let wls = suite(scale, SEED);
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(Job::new(
            wl.as_ref(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(Job::baseline(
            wl.as_ref(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    let results = run_grid(&jobs);

    let mut table = Table::new(&["workload", "delta uJ", "static uJ", "savings"]);
    for (wl, pair) in wls.iter().zip(results.chunks(2)) {
        let (d, s) = (&pair[0], &pair[1]);
        let dcfg = seeded(DeltaConfig::delta(TILES), wl.as_ref());
        let scfg = seeded(DeltaConfig::static_parallel(TILES), wl.as_ref());
        let de = ts_delta::energy::breakdown(&dcfg, d).total_uj();
        let se = ts_delta::energy::breakdown(&scfg, s).total_uj();
        table.row(vec![
            wl.name().into(),
            format!("{de:.1}"),
            format!("{se:.1}"),
            format!("{:.0}%", 100.0 * (1.0 - de / se)),
        ]);
    }
    table
}

/// `tbl_area` — analytical area breakdown and the TaskStream overhead.
pub fn tbl_area() -> Table {
    let b = area::breakdown(&DeltaConfig::delta(TILES));
    let mut table = Table::new(&["component", "mm2", "taskstream"]);
    for item in &b.items {
        table.row(vec![
            item.name.into(),
            format!("{:.3}", item.mm2),
            if item.taskstream { "yes" } else { "" }.into(),
        ]);
    }
    table.row(vec![
        "total".into(),
        format!("{:.3}", b.total_mm2()),
        "".into(),
    ]);
    table.row(vec![
        "taskstream overhead".into(),
        format!("{:.1}%", 100.0 * b.taskstream_overhead()),
        "".into(),
    ]);
    table
}

/// All experiment ids, in report order.
pub const ALL: &[&str] = &[
    "tbl_config",
    "tbl_workloads",
    "fig_overall",
    "fig_ablation",
    "fig_tiles",
    "fig_grain",
    "fig_imbalance",
    "fig_noc",
    "fig_policy",
    "fig_queue",
    "fig_reconfig",
    "fig_window",
    "fig_prefetch",
    "fig_batch",
    "fig_spawn",
    "fig_steal",
    "fig_lanes",
    "fig_timeline",
    "fig_faults",
    "tbl_energy",
    "tbl_area",
];

/// The scale's name as recorded in golden documents.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
    }
}

/// Runs one experiment by id and captures it as a diffable
/// [`GoldenDoc`]: headers, every cell, and any trailer values.
///
/// This is the canonical entry point — [`run`] is a rendering of the
/// returned document, and the golden regression gate serializes it.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn run_doc(id: &str, scale: Scale) -> GoldenDoc {
    let mut extras = Vec::new();
    let table = match id {
        "tbl_config" => tbl_config(),
        "tbl_workloads" => tbl_workloads(scale),
        "fig_overall" => {
            let o = fig_overall(scale);
            extras.push(("geomean".to_string(), fmt_x(o.geomean)));
            extras.push(("irregular_geomean".to_string(), fmt_x(o.irregular_geomean)));
            o.table
        }
        "fig_ablation" => fig_ablation(scale),
        "fig_tiles" => fig_tiles(scale, &[1, 2, 4, 8, 16]),
        "fig_grain" => fig_grain(scale),
        "fig_imbalance" => fig_imbalance(scale),
        "fig_noc" => fig_noc(scale),
        "fig_policy" => fig_policy(scale),
        "fig_queue" => fig_queue(scale),
        "fig_reconfig" => fig_reconfig(scale),
        "fig_window" => fig_window(scale),
        "fig_prefetch" => fig_prefetch(scale),
        "fig_batch" => fig_batch(scale),
        "fig_spawn" => fig_spawn(scale),
        "fig_steal" => fig_steal(scale),
        "fig_lanes" => fig_lanes(scale),
        "fig_timeline" => fig_timeline(scale),
        "fig_faults" => fig_faults(scale),
        "tbl_energy" => tbl_energy(scale),
        "tbl_area" => tbl_area(),
        other => panic!("unknown experiment '{other}' (known: {ALL:?})"),
    };
    GoldenDoc::new(id, scale_name(scale), &table, extras)
}

/// Renders a captured experiment exactly as [`run`] prints it.
pub fn render_doc(doc: &GoldenDoc) -> String {
    let table = doc.table();
    if doc.id == "fig_overall" {
        format!(
            "{}\n  headline: {} overall, {} on the irregular subset\n",
            table,
            doc.extra("geomean").unwrap_or("?"),
            doc.extra("irregular_geomean").unwrap_or("?")
        )
    } else {
        table.to_string()
    }
}

/// Runs one experiment by id and returns its rendered output.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn run(id: &str, scale: Scale) -> String {
    render_doc(&run_doc(id, scale))
}

/// A single traced simulation of an experiment's representative
/// workload (see [`trace_run`]).
#[derive(Debug)]
pub struct TraceRun {
    /// The validated report, with `report.trace` populated.
    pub report: RunReport,
    /// Name of the workload that ran.
    pub workload: String,
    /// The exact configuration used (mesh dims, tile count).
    pub cfg: DeltaConfig,
}

/// Runs one representative workload of experiment `id` with event
/// tracing enabled and returns the traced, validated report.
///
/// Tracing a whole sweep grid would interleave streams meaninglessly,
/// so `repro --trace` records one simulation chosen to exercise what
/// the experiment is about: the multicast-heavy experiments trace
/// `dtree`, the stealing experiment traces `merge_sort` with stealing
/// on, everything else traces `spmv`.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn trace_run(id: &str, scale: Scale) -> TraceRun {
    assert!(
        ALL.contains(&id),
        "unknown experiment '{id}' (known: {ALL:?})"
    );
    let wl: Box<dyn Workload> = match (id, scale) {
        ("fig_noc" | "fig_batch", Scale::Tiny) => Box::new(DTree::tiny(SEED)),
        ("fig_noc" | "fig_batch", Scale::Small) => Box::new(DTree::small(SEED)),
        ("fig_steal", Scale::Tiny) => Box::new(MergeSort::tiny(SEED)),
        ("fig_steal", Scale::Small) => Box::new(MergeSort::small(SEED)),
        (_, Scale::Tiny) => Box::new(Spmv::tiny(SEED)),
        (_, Scale::Small) => Box::new(Spmv::small(SEED)),
    };
    let mut b = seeded(DeltaConfig::delta(TILES), wl.as_ref())
        .to_builder()
        .trace(true);
    if id == "fig_steal" {
        b = b.work_stealing(true);
    }
    if id == "fig_faults" {
        // trace the thing the experiment is about: a run with live
        // fault injection and recovery (chaos preset)
        b = b.faults(FaultsConfig::chaos()).stall_limit(200_000);
    }
    let cfg = b.build();
    let report = crate::run_validated(wl.as_ref(), cfg.clone(), false);
    TraceRun {
        report,
        workload: wl.name().to_string(),
        cfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        assert!(tbl_config().to_string().contains("tiles"));
        assert!(tbl_area().to_string().contains("taskstream overhead"));
        assert!(tbl_workloads(Scale::Tiny).len() == 9);
    }

    #[test]
    fn overall_tiny_has_sane_shape() {
        let o = fig_overall(Scale::Tiny);
        assert!(o.geomean > 0.8, "geomean {} collapsed", o.geomean);
        assert!(o.irregular_geomean >= o.geomean * 0.9);
        assert_eq!(o.table.len(), 11); // 9 workloads + 2 geomean rows
    }

    #[test]
    fn run_rejects_unknown_id() {
        let err = std::panic::catch_unwind(|| run("nope", Scale::Tiny));
        assert!(err.is_err());
    }

    #[test]
    fn derive_seed_is_stable_and_key_sensitive() {
        assert_eq!(derive_seed(SEED, "spmv"), derive_seed(SEED, "spmv"));
        assert_ne!(derive_seed(SEED, "spmv"), derive_seed(SEED, "bfs"));
        assert_ne!(derive_seed(SEED, "spmv"), derive_seed(SEED + 1, "spmv"));
    }
}
