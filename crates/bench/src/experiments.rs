//! The experiments: one planner per table/figure.
//!
//! Every experiment is split into two pure halves: **plan** —
//! materialize the full (workload × config × policy) grid into a
//! [`SweepJob`] list — and **assemble** — turn the order-preserved
//! outcomes back into the printable table. Between the halves sits one
//! call to [`crate::run_jobs`], so a whole-sweep driver
//! ([`run_docs`]) can concatenate *every* experiment's jobs into a
//! single global work-stealing pool: a long `fig_faults` grid cell no
//! longer holds an entire experiment batch hostage while finished
//! workers idle — they steal cells from whatever experiment still has
//! work.
//!
//! Per-job RNG seeds derive from [`SEED`] plus a stable job key
//! ([`derive_seed`]), never from execution order, so `repro --jobs N`
//! output is byte-identical to `--jobs 1` — and, with the result cache
//! on, to a warm re-run answered from disk.

use crate::golden::GoldenDoc;
use crate::{fmt_x, run_faulted, run_jobs, FaultOutcome, SweepJob, Table};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use taskstream_model::Policy;
use ts_delta::{
    area, DeltaConfig, DrainPolicy, FaultsConfig, Features, PartitionPolicy, RunReport,
    TenancyConfig,
};
use ts_sim::stats::geomean;
use ts_workloads::{
    bfs::Bfs, dtree::DTree, gemm::Gemm, hash_join::HashJoin, kmeans::KMeans, merge_sort::MergeSort,
    query_plan::QueryPlan, request_server::RequestServer, spmv::Spmv, streams_suite, suite, Scale,
    Workload,
};

/// Default experiment seed (all experiments are reproducible from it).
pub const SEED: u64 = 42;

/// Paper-scale tile count.
pub const TILES: usize = 8;

/// Stable per-job seed: folds a job key (the workload name) into the
/// experiment seed with FNV-1a, so a run's RNG streams depend on
/// *what* it is, not on where sweep iteration order placed it. This is
/// what makes a parallel sweep byte-identical to a serial one: no job
/// inherits RNG state from the jobs that happened to run before it.
///
/// The key is the workload name alone (not the design point), so every
/// design-point sweep over one workload shares a seed — and therefore
/// shares CGRA mapping-cache entries, which are keyed on
/// `(fabric, DFG, seed)`.
pub fn derive_seed(base: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A design point with the job's derived seed applied.
fn seeded(cfg: DeltaConfig, wl: &dyn Workload) -> DeltaConfig {
    cfg.to_builder().seed(derive_seed(SEED, wl.name())).build()
}

/// The assembly half of an experiment: outcomes (in job order) to
/// (table, golden extras).
type Assemble = Box<dyn FnOnce(&[FaultOutcome]) -> (Table, Vec<(String, String)>) + Send>;

/// A planned experiment: its flattened job list plus the assembly that
/// rebuilds the table from order-preserved outcomes. Planning runs no
/// simulations; a driver is free to concatenate many plans' jobs into
/// one [`run_jobs`] pool and hand each plan back its slice.
pub struct Plan {
    /// Experiment id (`fig_overall`, ...).
    pub id: &'static str,
    /// Scale the plan was built for.
    pub scale: Scale,
    /// The materialized grid, one stealable simulation per entry.
    pub jobs: Vec<SweepJob>,
    planned: usize,
    assemble: Assemble,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("id", &self.id)
            .field("scale", &self.scale)
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

impl Plan {
    fn new(
        id: &'static str,
        scale: Scale,
        jobs: Vec<SweepJob>,
        assemble: impl FnOnce(&[FaultOutcome]) -> (Table, Vec<(String, String)>) + Send + 'static,
    ) -> Self {
        Plan {
            id,
            scale,
            planned: jobs.len(),
            jobs,
            assemble: Box::new(assemble),
        }
    }

    /// A plan with no simulations (the analytical tables).
    fn immediate(id: &'static str, scale: Scale, table: Table) -> Self {
        Plan::new(id, scale, Vec::new(), move |_| (table, Vec::new()))
    }

    /// Assembles the experiment's golden document from its outcomes —
    /// exactly `self.jobs.len()` of them, in job order.
    ///
    /// # Panics
    ///
    /// Panics if the outcome count disagrees with the plan, or if a
    /// validated job came back wedged (impossible through
    /// [`run_jobs`]).
    pub fn finish(self, outcomes: &[FaultOutcome]) -> GoldenDoc {
        assert_eq!(
            outcomes.len(),
            self.planned,
            "{}: plan/outcome length mismatch",
            self.id
        );
        let (table, extras) = (self.assemble)(outcomes);
        GoldenDoc::new(self.id, scale_name(self.scale), &table, extras)
    }
}

/// Unwraps validated outcomes (every job of a fault-free experiment).
fn completed(outcomes: &[FaultOutcome]) -> Vec<&RunReport> {
    outcomes
        .iter()
        .map(|o| o.report().expect("validated sweep jobs always complete"))
        .collect()
}

/// The workload suite as shareable handles (jobs and the assembly
/// closure both need them). Memoized per scale: every plan in a sweep
/// asks for the same suite, and handing them the *same* `Arc`s lets
/// the sweep runner compute each workload's cache fingerprint once for
/// the whole sweep instead of once per experiment. (Construction is
/// seeded, so sharing instances cannot change any result.)
fn arc_suite(scale: Scale) -> Vec<Arc<dyn Workload>> {
    type SuiteMemo = Mutex<HashMap<&'static str, Vec<Arc<dyn Workload>>>>;
    static SUITES: OnceLock<SuiteMemo> = OnceLock::new();
    let mut suites = SUITES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("suite memo lock poisoned");
    suites
        .entry(scale_name(scale))
        .or_insert_with(|| suite(scale, SEED).into_iter().map(Arc::from).collect())
        .clone()
}

/// `fig_overall` — the headline: Delta vs. the equivalent
/// static-parallel design, per workload. Extras carry the suite and
/// irregular-subset geomeans.
fn plan_overall(scale: Scale) -> Plan {
    let wls = arc_suite(scale);
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(SweepJob::baseline(
            wl.clone(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    Plan::new("fig_overall", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "workload",
            "delta cyc",
            "static cyc",
            "speedup",
            "delta imb",
            "static imb",
        ]);
        let mut speedups = Vec::new();
        let mut irregular = Vec::new();
        for (wl, pair) in wls.iter().zip(results.chunks(2)) {
            let (d, s) = (pair[0], pair[1]);
            let sp = s.cycles as f64 / d.cycles as f64;
            speedups.push(sp);
            if matches!(
                wl.name(),
                "bfs" | "sssp" | "dtree" | "merge_sort" | "spmv" | "hash_join" | "tri_count"
            ) {
                irregular.push(sp);
            }
            table.row(vec![
                wl.name().into(),
                d.cycles.to_string(),
                s.cycles.to_string(),
                fmt_x(sp),
                format!("{:.2}", d.load_imbalance()),
                format!("{:.2}", s.load_imbalance()),
            ]);
        }
        let g = geomean(&speedups);
        let gi = geomean(&irregular);
        table.row(vec![
            "geomean".into(),
            "-".into(),
            "-".into(),
            fmt_x(g),
            "-".into(),
            "-".into(),
        ]);
        table.row(vec![
            "geomean (irregular)".into(),
            "-".into(),
            "-".into(),
            fmt_x(gi),
            "-".into(),
            "-".into(),
        ]);
        let extras = vec![
            ("geomean".to_string(), fmt_x(g)),
            ("irregular_geomean".to_string(), fmt_x(gi)),
        ];
        (table, extras)
    })
}

/// `fig_ablation` — cumulative mechanism breakdown. Speedups are
/// relative to the static-parallel design running the static program
/// formulation:
/// `+tasks` = task-parallel program on static placement;
/// `+balance` = work-aware placement; `+pipeline` = direct pipes;
/// `+multicast` = shared-read recovery (= Delta).
fn plan_ablation(scale: Scale) -> Plan {
    let steps: [(&str, Features, Policy); 4] = [
        ("+tasks", Features::none(), Policy::StaticHash),
        (
            "+balance",
            Features {
                work_aware: true,
                pipelining: false,
                multicast: false,
            },
            Policy::WorkAware,
        ),
        (
            "+pipeline",
            Features {
                work_aware: true,
                pipelining: true,
                multicast: false,
            },
            Policy::WorkAware,
        ),
        ("+multicast", Features::all(), Policy::WorkAware),
    ];
    let wls = arc_suite(scale);
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::baseline(
            wl.clone(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
        for (_, features, policy) in steps {
            let cfg = DeltaConfig::static_parallel(TILES)
                .with_policy(policy)
                .with_features(features);
            jobs.push(SweepJob::new(wl.clone(), seeded(cfg, wl.as_ref())));
        }
    }
    let group_len = 1 + steps.len();
    Plan::new("fig_ablation", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "workload",
            "static",
            "+tasks",
            "+balance",
            "+pipeline",
            "+multicast",
        ]);
        for (wl, group) in wls.iter().zip(results.chunks(group_len)) {
            let base = group[0];
            let mut cells = vec![wl.name().to_string(), "1.00x".to_string()];
            for r in &group[1..] {
                cells.push(fmt_x(base.cycles as f64 / r.cycles as f64));
            }
            table.row(cells);
        }
        (table, Vec::new())
    })
}

/// `fig_tiles` — tile-count scaling, Delta vs static-parallel.
fn plan_tiles(scale: Scale, tile_counts: &[usize]) -> Plan {
    let tile_counts = tile_counts.to_vec();
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Arc::new(Spmv::tiny(SEED)),
            Arc::new(Bfs::tiny(SEED)),
            Arc::new(DTree::tiny(SEED)),
            Arc::new(Gemm::tiny(SEED)),
        ],
        Scale::Small => vec![
            Arc::new(Spmv::small(SEED)),
            Arc::new(Bfs::small(SEED)),
            Arc::new(DTree::small(SEED)),
            Arc::new(Gemm::small(SEED)),
        ],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &t in &tile_counts {
            jobs.push(SweepJob::new(
                wl.clone(),
                seeded(DeltaConfig::delta(t), wl.as_ref()),
            ));
            jobs.push(SweepJob::baseline(
                wl.clone(),
                seeded(DeltaConfig::static_parallel(t), wl.as_ref()),
            ));
        }
    }
    Plan::new("fig_tiles", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["workload", "tiles", "delta cyc", "static cyc", "speedup"]);
        let mut res = results.iter();
        for wl in &wls {
            for &t in &tile_counts {
                let d = res.next().unwrap();
                let s = res.next().unwrap();
                table.row(vec![
                    wl.name().into(),
                    t.to_string(),
                    d.cycles.to_string(),
                    s.cycles.to_string(),
                    fmt_x(s.cycles as f64 / d.cycles as f64),
                ]);
            }
        }
        (table, Vec::new())
    })
}

/// `fig_grain` — task-granularity sweep (SpMV rows per task).
fn plan_grain(scale: Scale) -> Plan {
    let grains: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
    let (n, max_row) = match scale {
        Scale::Tiny => (256, 64),
        Scale::Small => (2048, 2048),
    };
    let wls: Vec<Arc<dyn Workload>> = grains
        .iter()
        .map(|&g| Arc::new(Spmv::new(n, max_row, g, SEED)) as Arc<dyn Workload>)
        .collect();
    let tasks: Vec<u64> = wls.iter().map(|wl| wl.info().tasks).collect();
    let grains: Vec<usize> = grains.to_vec();
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(SweepJob::baseline(
            wl.clone(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    Plan::new("fig_grain", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["rows/task", "tasks", "delta cyc", "static cyc", "speedup"]);
        for ((&g, &t), pair) in grains.iter().zip(&tasks).zip(results.chunks(2)) {
            let (d, s) = (pair[0], pair[1]);
            table.row(vec![
                g.to_string(),
                t.to_string(),
                d.cycles.to_string(),
                s.cycles.to_string(),
                fmt_x(s.cycles as f64 / d.cycles as f64),
            ]);
        }
        (table, Vec::new())
    })
}

/// `fig_imbalance` — per-tile busy cycles under both designs.
fn plan_imbalance(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(Spmv::tiny(SEED)), Arc::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Arc::new(Spmv::small(SEED)), Arc::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(SweepJob::baseline(
            wl.clone(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    Plan::new("fig_imbalance", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "workload",
            "design",
            "per-tile busy (max/mean)",
            "imbalance",
        ]);
        let mut res = results.iter();
        for wl in &wls {
            for design in ["delta", "static"] {
                let r = res.next().unwrap();
                let busy = r.tile_busy();
                let max = busy.iter().cloned().fold(0.0f64, f64::max);
                let mean = busy.iter().sum::<f64>() / busy.len() as f64;
                table.row(vec![
                    wl.name().into(),
                    design.into(),
                    format!("{max:.0}/{mean:.0}"),
                    format!("{:.2}", r.load_imbalance()),
                ]);
            }
        }
        (table, Vec::new())
    })
}

/// `fig_noc` — DRAM words and NoC flit-hops with and without multicast.
fn plan_noc(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Arc::new(DTree::tiny(SEED)),
            Arc::new(KMeans::tiny(SEED)),
            Arc::new(HashJoin::tiny(SEED)),
        ],
        Scale::Small => vec![
            Arc::new(DTree::small(SEED)),
            Arc::new(KMeans::small(SEED)),
            Arc::new(HashJoin::small(SEED)),
        ],
    };
    let unicast = Features {
        work_aware: true,
        pipelining: true,
        multicast: false,
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(
                DeltaConfig::delta(TILES).with_features(unicast),
                wl.as_ref(),
            ),
        ));
    }
    Plan::new("fig_noc", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "workload",
            "dram rd (mc)",
            "dram rd (uni)",
            "saved",
            "hops (mc)",
            "hops (uni)",
        ]);
        for (wl, pair) in wls.iter().zip(results.chunks(2)) {
            let (with, without) = (pair[0], pair[1]);
            let rd_mc = with.stats.get_or_zero("dram.read_words");
            let rd_uni = without.stats.get_or_zero("dram.read_words");
            table.row(vec![
                wl.name().into(),
                format!("{rd_mc:.0}"),
                format!("{rd_uni:.0}"),
                format!("{:.0}%", 100.0 * (1.0 - rd_mc / rd_uni.max(1.0))),
                format!("{:.0}", with.noc_hops()),
                format!("{:.0}", without.noc_hops()),
            ]);
        }
        (table, Vec::new())
    })
}

/// `fig_policy` — placement-policy comparison on skewed workloads
/// (other mechanisms held on). Cells are slowdown relative to
/// work-aware; `least-queued` isolates the value of the *work* hint
/// (it balances task counts but not task sizes).
fn plan_policy(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(Spmv::tiny(SEED)), Arc::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Arc::new(Spmv::small(SEED)), Arc::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(
                DeltaConfig::delta(TILES).with_policy(Policy::WorkAware),
                wl.as_ref(),
            ),
        ));
        for pol in Policy::ALL {
            jobs.push(SweepJob::new(
                wl.clone(),
                seeded(DeltaConfig::delta(TILES).with_policy(pol), wl.as_ref()),
            ));
        }
    }
    Plan::new("fig_policy", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "workload",
            "work-aware",
            "least-queued",
            "round-robin",
            "random",
            "static-hash",
        ]);
        for (wl, group) in wls.iter().zip(results.chunks(1 + Policy::ALL.len())) {
            let base = group[0];
            let mut cells = vec![wl.name().to_string()];
            for r in &group[1..] {
                cells.push(fmt_x(r.cycles as f64 / base.cycles as f64));
            }
            table.row(cells);
        }
        (table, Vec::new())
    })
}

/// Shared shape of the four base-point-relative single-knob ablations
/// (`fig_window` / `fig_prefetch` / `fig_batch` / `fig_queue`-style):
/// for each workload, one job at the default setting (the divisor),
/// then one per swept value.
fn plan_knob<K: Copy + ToString + Send + 'static>(
    id: &'static str,
    scale: Scale,
    wls: Vec<Arc<dyn Workload>>,
    default: K,
    values: Vec<K>,
    make_cfg: impl Fn(usize, K) -> DeltaConfig,
    headers: [&'static str; 4],
) -> Plan {
    let mut jobs = Vec::new();
    for wl in &wls {
        for &v in std::iter::once(&default).chain(values.iter()) {
            jobs.push(SweepJob::new(
                wl.clone(),
                seeded(make_cfg(TILES, v), wl.as_ref()),
            ));
        }
    }
    Plan::new(id, scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&headers);
        for (wl, group) in wls.iter().zip(results.chunks(1 + values.len())) {
            let base = group[0];
            for (&v, r) in values.iter().zip(&group[1..]) {
                table.row(vec![
                    wl.name().into(),
                    v.to_string(),
                    r.cycles.to_string(),
                    fmt_x(base.cycles as f64 / r.cycles as f64),
                ]);
            }
        }
        (table, Vec::new())
    })
}

/// `fig_window` — dispatcher lookahead-window ablation (a design
/// choice of this implementation: how far into the pending queue the
/// dispatcher searches for ready/placeable tasks, multicast sharers and
/// pipe chains).
fn plan_window(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(DTree::tiny(SEED)), Arc::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Arc::new(DTree::small(SEED)), Arc::new(Bfs::small(SEED))],
    };
    plan_knob(
        "fig_window",
        scale,
        wls,
        32usize,
        vec![1, 4, 16, 32, 64],
        |tiles, w| DeltaConfig::builder(tiles).dispatch_window(w).build(),
        ["workload", "window", "cycles", "vs 32"],
    )
}

/// `fig_prefetch` — stream prefetch-depth ablation (how many queue
/// positions may issue DRAM streams; deep prefetch steals bandwidth
/// from the running task).
fn plan_prefetch(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(Spmv::tiny(SEED)), Arc::new(Gemm::tiny(SEED))],
        Scale::Small => vec![Arc::new(Spmv::small(SEED)), Arc::new(Gemm::small(SEED))],
    };
    plan_knob(
        "fig_prefetch",
        scale,
        wls,
        2usize,
        vec![1, 2, 4],
        |tiles, d| DeltaConfig::builder(tiles).prefetch_depth(d).build(),
        ["workload", "depth", "cycles", "vs 2"],
    )
}

/// `fig_queue` — tile task-queue depth sensitivity (Delta).
fn plan_queue(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(Spmv::tiny(SEED)), Arc::new(HashJoin::tiny(SEED))],
        Scale::Small => vec![Arc::new(Spmv::small(SEED)), Arc::new(HashJoin::small(SEED))],
    };
    plan_knob(
        "fig_queue",
        scale,
        wls,
        4usize,
        vec![1, 2, 4, 8],
        |tiles, depth| DeltaConfig::builder(tiles).tile_queue(depth).build(),
        ["workload", "depth", "cycles", "vs depth=4"],
    )
}

/// `fig_batch` — multicast batching-window ablation (how long a shared
/// read waits for sharers to join before it starts streaming).
fn plan_batch(scale: Scale) -> Plan {
    let windows: Vec<u64> = vec![0, 8, 24, 64, 256];
    let wl: Arc<dyn Workload> = match scale {
        Scale::Tiny => Arc::new(DTree::tiny(SEED)),
        Scale::Small => Arc::new(DTree::small(SEED)),
    };
    let mut jobs = Vec::new();
    for &w in std::iter::once(&24u64).chain(windows.iter()) {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(
                DeltaConfig::builder(TILES).mcast_batch_window(w).build(),
                wl.as_ref(),
            ),
        ));
    }
    Plan::new("fig_batch", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["window cyc", "cycles", "dram reads", "vs 24"]);
        let base = results[0];
        for (&w, r) in windows.iter().zip(&results[1..]) {
            table.row(vec![
                w.to_string(),
                r.cycles.to_string(),
                format!("{:.0}", r.stats.get_or_zero("dram.read_words")),
                fmt_x(base.cycles as f64 / r.cycles as f64),
            ]);
        }
        (table, Vec::new())
    })
}

/// `fig_spawn` — task-creation overhead sensitivity (spawn + host
/// notification latency sweep). Dynamically spawning workloads feel
/// this; statically spawned ones shrug it off.
fn plan_spawn(scale: Scale) -> Plan {
    let latencies: Vec<u64> = vec![0, 12, 48, 192, 768];
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(Bfs::tiny(SEED)), Arc::new(Spmv::tiny(SEED))],
        Scale::Small => vec![Arc::new(Bfs::small(SEED)), Arc::new(Spmv::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &lat in &latencies {
            jobs.push(SweepJob::new(
                wl.clone(),
                seeded(
                    DeltaConfig::builder(TILES)
                        .spawn_latency(lat)
                        .host_latency(lat)
                        .build(),
                    wl.as_ref(),
                ),
            ));
        }
    }
    Plan::new("fig_spawn", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["workload", "latency", "cycles", "slowdown"]);
        for (wl, group) in wls.iter().zip(results.chunks(latencies.len())) {
            let base = group[0].cycles;
            for (&lat, r) in latencies.iter().zip(group) {
                table.row(vec![
                    wl.name().into(),
                    lat.to_string(),
                    r.cycles.to_string(),
                    fmt_x(r.cycles as f64 / base as f64),
                ]);
            }
        }
        (table, Vec::new())
    })
}

/// `fig_reconfig` — reconfiguration-cost sensitivity (workloads with
/// multiple task types sharing tiles).
fn plan_reconfig(scale: Scale) -> Plan {
    let costs: Vec<u64> = vec![0, 2, 8, 32, 128];
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Arc::new(HashJoin::tiny(SEED)),
            Arc::new(MergeSort::tiny(SEED)),
        ],
        Scale::Small => vec![
            Arc::new(HashJoin::small(SEED)),
            Arc::new(MergeSort::small(SEED)),
        ],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &c in &costs {
            let cfg = DeltaConfig::builder(TILES).fabric_config_per_pe(c).build();
            jobs.push(SweepJob::new(wl.clone(), seeded(cfg, wl.as_ref())));
        }
    }
    Plan::new("fig_reconfig", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["workload", "cfg cyc/PE", "delta cyc", "slowdown"]);
        for (wl, group) in wls.iter().zip(results.chunks(costs.len())) {
            let base = group[0].cycles;
            for (&c, r) in costs.iter().zip(group) {
                table.row(vec![
                    wl.name().into(),
                    c.to_string(),
                    r.cycles.to_string(),
                    fmt_x(r.cycles as f64 / base as f64),
                ]);
            }
        }
        (table, Vec::new())
    })
}

/// `fig_steal` — extension study: can tile-side work stealing replace
/// (or add to) work-aware dispatch? Columns are cycles under: static
/// placement, static + stealing, work-aware, work-aware + stealing.
fn plan_steal(scale: Scale) -> Plan {
    let combos = [
        (Policy::StaticHash, false),
        (Policy::StaticHash, true),
        (Policy::WorkAware, false),
        (Policy::WorkAware, true),
    ];
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(Spmv::tiny(SEED)), Arc::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Arc::new(Spmv::small(SEED)), Arc::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for (policy, steal) in combos {
            let cfg = DeltaConfig::builder(TILES)
                .policy(policy)
                .work_stealing(steal)
                .build();
            jobs.push(SweepJob::new(wl.clone(), seeded(cfg, wl.as_ref())));
        }
    }
    Plan::new("fig_steal", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "workload",
            "static",
            "static+steal",
            "work-aware",
            "work-aware+steal",
        ]);
        for (wl, group) in wls.iter().zip(results.chunks(combos.len())) {
            let mut cells = vec![wl.name().to_string()];
            for r in group {
                cells.push(r.cycles.to_string());
            }
            table.row(cells);
        }
        (table, Vec::new())
    })
}

/// `fig_lanes` — vector-lane sweep (an extension of the fabric model:
/// up to `lanes` firings retire per cycle). Compute-bound workloads
/// scale until the memory system becomes the wall.
fn plan_lanes(scale: Scale) -> Plan {
    let lanes: Vec<u32> = vec![1, 2, 4, 8];
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![
            Arc::new(Gemm::tiny(SEED)),
            Arc::new(DTree::tiny(SEED)),
            Arc::new(Spmv::tiny(SEED)),
        ],
        Scale::Small => vec![
            Arc::new(Gemm::small(SEED)),
            Arc::new(DTree::small(SEED)),
            Arc::new(Spmv::small(SEED)),
        ],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        for &l in &lanes {
            let cfg = DeltaConfig::builder(TILES).fabric_lanes(l).build();
            jobs.push(SweepJob::new(wl.clone(), seeded(cfg, wl.as_ref())));
        }
    }
    Plan::new("fig_lanes", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["workload", "lanes", "cycles", "speedup vs 1"]);
        for (wl, group) in wls.iter().zip(results.chunks(lanes.len())) {
            let base = group[0].cycles;
            for (&l, r) in lanes.iter().zip(group) {
                table.row(vec![
                    wl.name().into(),
                    l.to_string(),
                    r.cycles.to_string(),
                    fmt_x(base as f64 / r.cycles as f64),
                ]);
            }
        }
        (table, Vec::new())
    })
}

/// `fig_timeline` — tile-occupancy sparklines over the run (the classic
/// utilization figure): Delta keeps tiles busy; static placement shows
/// the straggler tail / sweep troughs.
fn plan_timeline(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = match scale {
        Scale::Tiny => vec![Arc::new(Spmv::tiny(SEED)), Arc::new(Bfs::tiny(SEED))],
        Scale::Small => vec![Arc::new(Spmv::small(SEED)), Arc::new(Bfs::small(SEED))],
    };
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(SweepJob::baseline(
            wl.clone(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    Plan::new("fig_timeline", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["workload", "design", "occupancy over time"]);
        let mut res = results.iter();
        for wl in &wls {
            for design in ["delta", "static"] {
                let r = res.next().unwrap();
                table.row(vec![
                    wl.name().into(),
                    design.into(),
                    r.sparkline(TILES, 64),
                ]);
            }
        }
        (table, Vec::new())
    })
}

/// One `fig_faults` design point: the given preset with fault
/// injection scaled off a single knob — `rate` of the tiles fail-stop,
/// transient stalls hit each (tile, epoch) with the same probability,
/// and DRAM retries arrive at a quarter of it. Recovery is what the
/// experiment compares, so it is the one per-side difference.
fn fault_point(cfg: DeltaConfig, rate: f64, recovery: bool, window: u64) -> DeltaConfig {
    let faults = FaultsConfig {
        tile_fail_rate: rate,
        tile_fail_window: window,
        tile_stall_rate: rate,
        dram_retry_rate: rate / 4.0,
        recovery,
        watchdog_timeout: 8_000,
        ..FaultsConfig::none()
    };
    // Tight enough that a wedged baseline gives up quickly, loose
    // enough that recovery backoff (cap 4096) never trips it.
    cfg.to_builder().faults(faults).stall_limit(80_000).build()
}

/// `fig_faults` — graceful degradation under injected faults: Delta
/// with task-level recovery vs the static-parallel baseline, sweeping
/// the fault rate (see [`fault_point`]). Both sides see the *same*
/// seeded fault schedule; "lost" is the cycle cost relative to the
/// same design at rate 0. Delta routes around dead tiles and finishes
/// (every completed run also validates against the untimed oracle);
/// the baseline keeps hashing tasks onto a fail-stopped tile and
/// wedges, rendered as `wedged`.
fn plan_faults(scale: Scale) -> Plan {
    let rates: Vec<f64> = vec![0.0, 0.125, 0.25, 0.5];
    // fail-stop cycles are drawn from 1..=window; keep the window
    // inside the run so every swept rate actually injects
    let (wl, window): (Arc<dyn Workload>, u64) = match scale {
        Scale::Tiny => (Arc::new(Spmv::tiny(SEED)), 256),
        Scale::Small => (Arc::new(Spmv::small(SEED)), 8192),
    };
    let mut jobs = Vec::new();
    for &r in &rates {
        jobs.push(SweepJob::faulted(
            wl.clone(),
            seeded(
                fault_point(DeltaConfig::delta(TILES), r, true, window),
                wl.as_ref(),
            ),
            false,
        ));
        jobs.push(SweepJob::faulted(
            wl.clone(),
            seeded(
                fault_point(DeltaConfig::static_baseline(TILES), r, false, window),
                wl.as_ref(),
            ),
            true,
        ));
    }
    Plan::new("fig_faults", scale, jobs, move |outcomes| {
        let delta_base = outcomes[0]
            .report()
            .expect("fault-free delta run cannot wedge")
            .cycles;
        let static_base = outcomes[1]
            .report()
            .expect("fault-free baseline run cannot wedge")
            .cycles;
        let mut table = Table::new(&[
            "fail rate",
            "delta cyc",
            "delta lost",
            "redispatched",
            "static cyc",
            "static lost",
        ]);
        for (&r, pair) in rates.iter().zip(outcomes.chunks(2)) {
            let d = pair[0]
                .report()
                .expect("delta with recovery must not wedge");
            let (s_cyc, s_lost) = match &pair[1] {
                FaultOutcome::Completed(s) => (
                    s.cycles.to_string(),
                    s.cycles.saturating_sub(static_base).to_string(),
                ),
                FaultOutcome::Wedged { .. } => ("wedged".into(), "wedged".into()),
            };
            table.row(vec![
                format!("{r:.3}"),
                d.cycles.to_string(),
                d.cycles.saturating_sub(delta_base).to_string(),
                d.faults.tasks_redispatched.to_string(),
                s_cyc,
                s_lost,
            ]);
        }
        (table, Vec::new())
    })
}

/// `fig_tenancy` — multi-tenant co-residency QoS: tenant count ×
/// arrival rate under both partitioning policies, with the admission
/// gate on. Each grid point runs the co-resident request server plus
/// one isolated run per tenant (the same query stream, re-homed alone
/// on the machine), and reports per-tenant p50/p99 latency, the
/// slowdown each tenant pays for co-residency, and a per-config
/// fairness figure (min/max slowdown across tenants; 1.000 = every
/// tenant pays the same). Extras carry per-tenant deterministic
/// tallies (`tenant_*`) that the bench-json perf gate locks down.
fn plan_tenancy(scale: Scale) -> Plan {
    // paced rows use a period long enough that admission pacing (not
    // fabric contention) is the dominant queueing effect; flood rows
    // (period 0) exercise the admission gate under overload
    let (period, admit) = match scale {
        Scale::Tiny => (64, 6),
        Scale::Small => (192, 12),
    };
    let grid: Vec<(usize, u64)> = vec![(2, 0), (2, period), (4, 0), (4, period)];
    let parts = [PartitionPolicy::Shared, PartitionPolicy::Spatial];
    let mut jobs = Vec::new();
    let mut insts: Vec<(usize, u64, Arc<RequestServer>)> = Vec::new();
    for &(tenants, p) in &grid {
        let wl = Arc::new(match scale {
            Scale::Tiny => RequestServer::tiny(tenants, p, SEED),
            Scale::Small => RequestServer::small(tenants, p, SEED),
        });
        // isolated baselines: a lone tenant owns the whole machine
        // under either policy, so one (shared-fabric) run per tenant
        // serves both partitioning rows
        for t in 0..tenants {
            let iso = Arc::new(wl.isolated(t));
            let cfg = seeded(DeltaConfig::delta(TILES), iso.as_ref())
                .to_builder()
                .tenancy(iso.tenancy(PartitionPolicy::Shared, admit, DrainPolicy::Block))
                .build();
            jobs.push(SweepJob::new(iso, cfg));
        }
        for part in parts {
            let cfg = seeded(DeltaConfig::delta(TILES), wl.as_ref())
                .to_builder()
                .tenancy(wl.tenancy(part, admit, DrainPolicy::Block))
                .build();
            jobs.push(SweepJob::new(wl.clone(), cfg));
        }
        insts.push((tenants, p, wl));
    }
    Plan::new("fig_tenancy", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "tenants",
            "arrival",
            "partition",
            "tenant",
            "p50",
            "p99",
            "iso p50",
            "slowdown",
            "completed",
            "gate holds",
        ]);
        let mut extras = Vec::new();
        let mut off = 0;
        for (tenants, p, wl) in insts {
            let iso = &results[off..off + tenants];
            off += tenants;
            let arrival = if p == 0 {
                "flood".to_string()
            } else {
                format!("1/{p}")
            };
            for part in ["shared", "spatial"] {
                let co = results[off];
                off += 1;
                let mut slows = Vec::new();
                let mut done = Vec::new();
                let mut holds = Vec::new();
                for (t, iso_run) in iso.iter().enumerate() {
                    let stat = |k: &str| co.stats.get_or_zero(&format!("tenant{t}.{k}"));
                    let iso_p50 = iso_run.stats.get_or_zero("tenant0.p50_latency");
                    let p50 = stat("p50_latency");
                    let slow = p50 / iso_p50.max(1.0);
                    let completed = stat("completed");
                    assert_eq!(
                        completed as usize, wl.tenants[t].queries,
                        "tenant {t} starved under {part} ({arrival})"
                    );
                    table.row(vec![
                        tenants.to_string(),
                        arrival.clone(),
                        part.into(),
                        t.to_string(),
                        p50.to_string(),
                        stat("p99_latency").to_string(),
                        iso_p50.to_string(),
                        fmt_x(slow),
                        completed.to_string(),
                        stat("gate_holds").to_string(),
                    ]);
                    slows.push(slow);
                    done.push(completed.to_string());
                    holds.push(stat("gate_holds").to_string());
                }
                let worst = slows.iter().copied().fold(f64::MIN, f64::max);
                let best = slows.iter().copied().fold(f64::MAX, f64::min);
                let label = format!("{tenants}t.{arrival}.{part}");
                extras.push((format!("fairness.{label}"), format!("{:.3}", best / worst)));
                extras.push((format!("tenant_completed.{label}"), done.join(",")));
                extras.push((format!("tenant_gate_holds.{label}"), holds.join(",")));
            }
        }
        (table, extras)
    })
}

/// `fig_streams` — the second-generation streaming-graph workloads
/// (authored natively on the `ts-graph` declarative frontend): Delta
/// vs. the equivalent static-parallel design, with the direct/spilled
/// pipe split that shows how much of each chain the scheduler managed
/// to co-schedule.
fn plan_streams(scale: Scale) -> Plan {
    let wls: Vec<Arc<dyn Workload>> = streams_suite(scale, SEED)
        .into_iter()
        .map(Arc::from)
        .collect();
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(SweepJob::baseline(
            wl.clone(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    Plan::new("fig_streams", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&[
            "workload",
            "delta cyc",
            "static cyc",
            "speedup",
            "pipes direct",
            "pipes spilled",
        ]);
        let mut speedups = Vec::new();
        for (wl, pair) in wls.iter().zip(results.chunks(2)) {
            let (d, s) = (pair[0], pair[1]);
            let sp = s.cycles as f64 / d.cycles as f64;
            speedups.push(sp);
            table.row(vec![
                wl.name().into(),
                d.cycles.to_string(),
                s.cycles.to_string(),
                fmt_x(sp),
                (d.stats.sum_matching("pipes_direct") as u64).to_string(),
                (d.stats.sum_matching("pipes_spilled") as u64).to_string(),
            ]);
        }
        let g = geomean(&speedups);
        table.row(vec![
            "geomean".into(),
            "-".into(),
            "-".into(),
            fmt_x(g),
            "-".into(),
            "-".into(),
        ]);
        let extras = vec![("geomean".to_string(), fmt_x(g))];
        (table, extras)
    })
}

/// `tbl_workloads` — workload characteristics (no simulations).
fn plan_workloads(scale: Scale) -> Plan {
    let mut table = Table::new(&["workload", "tasks", "elements", "grain", "stresses"]);
    for wl in suite(scale, SEED) {
        let i = wl.info();
        table.row(vec![
            i.name.into(),
            i.tasks.to_string(),
            i.elements.to_string(),
            i.grain.to_string(),
            i.stresses.into(),
        ]);
    }
    Plan::immediate("tbl_workloads", scale, table)
}

/// `tbl_config` — architecture parameters of the evaluated design
/// (no simulations).
fn plan_config(scale: Scale) -> Plan {
    let c = DeltaConfig::delta(TILES);
    let (w, h) = c.mesh_dims();
    let mut table = Table::new(&["parameter", "value"]);
    let mut kv = |k: &str, v: String| table.row(vec![k.into(), v]);
    kv("tiles", c.tiles.to_string());
    kv(
        "fabric per tile",
        format!(
            "{}x{} PEs, mul/div every {}",
            c.fabric.rows, c.fabric.cols, c.fabric.muldiv_every
        ),
    );
    kv(
        "fabric reconfig",
        format!("{} cycles", c.fabric.config_cycles()),
    );
    kv(
        "scratchpad",
        format!("{} KiB @ {} acc/cyc", c.spad_words * 8 / 1024, c.spad_bw),
    );
    kv(
        "mesh",
        format!("{w}x{h} (tiles + {} mem ctrls)", c.mem_ctrls),
    );
    kv(
        "dram",
        format!(
            "{} w/cyc, {} cyc latency, gather x{}",
            c.dram.words_per_cycle, c.dram.latency, c.dram.gather_cost
        ),
    );
    kv("task queue/tile", c.tile_queue.to_string());
    kv(
        "dispatch",
        format!("{}/cyc, window {}", c.dispatch_per_cycle, c.dispatch_window),
    );
    kv(
        "spawn/host latency",
        format!("{}/{} cycles", c.spawn_latency, c.host_latency),
    );
    kv(
        "multicast batch window",
        format!("{} cycles", c.mcast_batch_window),
    );
    Plan::immediate("tbl_config", scale, table)
}

/// `tbl_energy` — per-workload energy, Delta vs static-parallel
/// (analytical event-energy model; see `ts_delta::energy`).
fn plan_energy(scale: Scale) -> Plan {
    let wls = arc_suite(scale);
    let mut jobs = Vec::new();
    for wl in &wls {
        jobs.push(SweepJob::new(
            wl.clone(),
            seeded(DeltaConfig::delta(TILES), wl.as_ref()),
        ));
        jobs.push(SweepJob::baseline(
            wl.clone(),
            seeded(DeltaConfig::static_parallel(TILES), wl.as_ref()),
        ));
    }
    Plan::new("tbl_energy", scale, jobs, move |outcomes| {
        let results = completed(outcomes);
        let mut table = Table::new(&["workload", "delta uJ", "static uJ", "savings"]);
        for (wl, pair) in wls.iter().zip(results.chunks(2)) {
            let (d, s) = (pair[0], pair[1]);
            let dcfg = seeded(DeltaConfig::delta(TILES), wl.as_ref());
            let scfg = seeded(DeltaConfig::static_parallel(TILES), wl.as_ref());
            let de = ts_delta::energy::breakdown(&dcfg, d).total_uj();
            let se = ts_delta::energy::breakdown(&scfg, s).total_uj();
            table.row(vec![
                wl.name().into(),
                format!("{de:.1}"),
                format!("{se:.1}"),
                format!("{:.0}%", 100.0 * (1.0 - de / se)),
            ]);
        }
        (table, Vec::new())
    })
}

/// `tbl_area` — analytical area breakdown and the TaskStream overhead
/// (no simulations).
fn plan_area(scale: Scale) -> Plan {
    let b = area::breakdown(&DeltaConfig::delta(TILES));
    let mut table = Table::new(&["component", "mm2", "taskstream"]);
    for item in &b.items {
        table.row(vec![
            item.name.into(),
            format!("{:.3}", item.mm2),
            if item.taskstream { "yes" } else { "" }.into(),
        ]);
    }
    table.row(vec![
        "total".into(),
        format!("{:.3}", b.total_mm2()),
        "".into(),
    ]);
    table.row(vec![
        "taskstream overhead".into(),
        format!("{:.1}%", 100.0 * b.taskstream_overhead()),
        "".into(),
    ]);
    Plan::immediate("tbl_area", scale, table)
}

/// All experiment ids, in report order.
pub const ALL: &[&str] = &[
    "tbl_config",
    "tbl_workloads",
    "fig_overall",
    "fig_ablation",
    "fig_tiles",
    "fig_grain",
    "fig_imbalance",
    "fig_noc",
    "fig_policy",
    "fig_queue",
    "fig_reconfig",
    "fig_window",
    "fig_prefetch",
    "fig_batch",
    "fig_spawn",
    "fig_steal",
    "fig_lanes",
    "fig_timeline",
    "fig_faults",
    "fig_tenancy",
    "fig_streams",
    "tbl_energy",
    "tbl_area",
];

/// The scale's name as recorded in golden documents.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
    }
}

/// Plans one experiment by id: materializes its job grid without
/// running anything. [`run_doc`] executes a single plan; [`run_docs`]
/// merges many plans into one flattened pool.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn plan(id: &str, scale: Scale) -> Plan {
    match id {
        "tbl_config" => plan_config(scale),
        "tbl_workloads" => plan_workloads(scale),
        "fig_overall" => plan_overall(scale),
        "fig_ablation" => plan_ablation(scale),
        "fig_tiles" => plan_tiles(scale, &[1, 2, 4, 8, 16]),
        "fig_grain" => plan_grain(scale),
        "fig_imbalance" => plan_imbalance(scale),
        "fig_noc" => plan_noc(scale),
        "fig_policy" => plan_policy(scale),
        "fig_queue" => plan_queue(scale),
        "fig_reconfig" => plan_reconfig(scale),
        "fig_window" => plan_window(scale),
        "fig_prefetch" => plan_prefetch(scale),
        "fig_batch" => plan_batch(scale),
        "fig_spawn" => plan_spawn(scale),
        "fig_steal" => plan_steal(scale),
        "fig_lanes" => plan_lanes(scale),
        "fig_timeline" => plan_timeline(scale),
        "fig_faults" => plan_faults(scale),
        "fig_tenancy" => plan_tenancy(scale),
        "fig_streams" => plan_streams(scale),
        "tbl_energy" => plan_energy(scale),
        "tbl_area" => plan_area(scale),
        other => panic!("unknown experiment '{other}' (known: {ALL:?})"),
    }
}

/// Runs one experiment by id and captures it as a diffable
/// [`GoldenDoc`]: headers, every cell, and any trailer values.
///
/// This is the canonical entry point — [`run`] is a rendering of the
/// returned document, and the golden regression gate serializes it.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn run_doc(id: &str, scale: Scale) -> GoldenDoc {
    let p = plan(id, scale);
    let outcomes = run_jobs(&p.jobs);
    p.finish(&outcomes)
}

/// Runs a whole sweep as **one flattened job pool**: plans every id,
/// concatenates all jobs, executes them in a single [`run_jobs`] call
/// (every simulation an independently stealable task), then hands each
/// plan its slice of the order-preserved outcomes. Output is
/// identical to mapping [`run_doc`] over `ids` — the flattening
/// changes wall-clock, never bytes.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn run_docs(ids: &[&str], scale: Scale) -> Vec<GoldenDoc> {
    let mut plans: Vec<Plan> = ids.iter().map(|id| plan(id, scale)).collect();
    let mut all_jobs: Vec<SweepJob> = Vec::new();
    let mut counts = Vec::with_capacity(plans.len());
    for p in &mut plans {
        counts.push(p.jobs.len());
        all_jobs.append(&mut p.jobs);
    }
    let outcomes = run_jobs(&all_jobs);
    let mut docs = Vec::with_capacity(plans.len());
    let mut offset = 0;
    for (p, n) in plans.into_iter().zip(counts) {
        docs.push(p.finish(&outcomes[offset..offset + n]));
        offset += n;
    }
    docs
}

/// Renders a captured experiment exactly as [`run`] prints it.
pub fn render_doc(doc: &GoldenDoc) -> String {
    let table = doc.table();
    if doc.id == "fig_overall" {
        format!(
            "{}\n  headline: {} overall, {} on the irregular subset\n",
            table,
            doc.extra("geomean").unwrap_or("?"),
            doc.extra("irregular_geomean").unwrap_or("?")
        )
    } else {
        table.to_string()
    }
}

/// Runs one experiment by id and returns its rendered output.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn run(id: &str, scale: Scale) -> String {
    render_doc(&run_doc(id, scale))
}

/// Output of `repro faults <experiment>`: one chaos-preset run of the
/// experiment's representative workload, completed, validated, and
/// summarized (see [`fault_run`]).
#[derive(Debug)]
pub struct FaultRun {
    /// The validated report, `report.faults` populated.
    pub report: RunReport,
    /// Name of the workload that ran.
    pub workload: String,
    /// Printable injection/recovery summary.
    pub summary: Table,
}

/// Runs one representative workload of experiment `id` under the
/// all-faults chaos preset ([`FaultsConfig::chaos`], every fault class
/// active, recovery on) and returns the validated report plus a
/// summary table. `fail_rate` overrides the preset's tile fail-stop
/// rate. The workload choice mirrors [`trace_run`].
///
/// # Panics
///
/// Panics on an unknown id, if the run wedges (recovery exists to
/// prevent exactly that), or if the completed run fails validation,
/// conservation, or oracle equivalence.
pub fn fault_run(id: &str, scale: Scale, fail_rate: Option<f64>) -> FaultRun {
    assert!(
        ALL.contains(&id),
        "unknown experiment '{id}' (known: {ALL:?})"
    );
    // fig_tenancy's chaos run is the fault-storm case: two flooding
    // co-resident tenants on a shared fabric with the admission gate
    // on, so one tenant's re-dispatch storm cannot starve its
    // neighbor — asserted below on per-tenant completion counts
    type StormSpec = (TenancyConfig, Vec<u64>);
    let (wl, tenancy): (Box<dyn Workload>, Option<StormSpec>) = match (id, scale) {
        ("fig_noc" | "fig_batch", Scale::Tiny) => (Box::new(DTree::tiny(SEED)), None),
        ("fig_noc" | "fig_batch", Scale::Small) => (Box::new(DTree::small(SEED)), None),
        ("fig_steal", Scale::Tiny) => (Box::new(MergeSort::tiny(SEED)), None),
        ("fig_steal", Scale::Small) => (Box::new(MergeSort::small(SEED)), None),
        ("fig_streams", Scale::Tiny) => (Box::new(QueryPlan::tiny(SEED)), None),
        ("fig_streams", Scale::Small) => (Box::new(QueryPlan::small(SEED)), None),
        ("fig_tenancy", _) => {
            let w = match scale {
                Scale::Tiny => RequestServer::tiny(2, 0, SEED),
                Scale::Small => RequestServer::small(2, 0, SEED),
            };
            let tc = w.tenancy(PartitionPolicy::Shared, 4, DrainPolicy::Block);
            let offered = w.tenants.iter().map(|l| l.queries as u64).collect();
            (Box::new(w), Some((tc, offered)))
        }
        (_, Scale::Tiny) => (Box::new(Spmv::tiny(SEED)), None),
        (_, Scale::Small) => (Box::new(Spmv::small(SEED)), None),
    };
    let faults = FaultsConfig {
        tile_fail_rate: fail_rate.unwrap_or(FaultsConfig::chaos().tile_fail_rate),
        // keep the fail-stop window inside the run at test scale so
        // the smoke actually exercises victimization and re-dispatch
        tile_fail_window: match scale {
            Scale::Tiny => 256,
            Scale::Small => 8192,
        },
        ..FaultsConfig::chaos()
    };
    let mut b = seeded(DeltaConfig::delta(TILES), wl.as_ref())
        .to_builder()
        .faults(faults)
        .stall_limit(200_000);
    if let Some((tc, _)) = &tenancy {
        b = b.tenancy(tc.clone());
    }
    let cfg = b.build();
    let report = match run_faulted(wl.as_ref(), cfg, false) {
        FaultOutcome::Completed(r) => *r,
        FaultOutcome::Wedged { cycles } => {
            panic!("chaos run of {id} wedged at cycle {cycles} despite recovery")
        }
    };
    let f = &report.faults;
    let mut summary = Table::new(&["metric", "value"]);
    let mut kv = |k: &str, v: String| summary.row(vec![k.into(), v]);
    kv("workload", wl.name().into());
    kv("cycles", report.cycles.to_string());
    kv("tasks completed", report.tasks_completed.to_string());
    kv("tile fail-stops", f.tile_fail_stops.to_string());
    kv("tile stalls", f.tile_stalls.to_string());
    kv(
        "noc flits lost",
        format!(
            "{} ({} dropped, {} corrupted)",
            f.noc_flits_dropped + f.noc_flits_corrupted,
            f.noc_flits_dropped,
            f.noc_flits_corrupted
        ),
    );
    kv("dram retries", f.dram_retries.to_string());
    kv("faults injected", f.injected().to_string());
    kv("watchdog fires", f.watchdog_fires.to_string());
    kv("tasks redispatched", f.tasks_redispatched.to_string());
    kv("pipe replays", f.pipe_replays.to_string());
    kv("backoff cycles", f.backoff_cycles.to_string());
    kv("wasted cycles", f.wasted_cycles.to_string());
    kv("cycles lost to recovery", f.cycles_lost().to_string());
    if let Some((_, offered)) = &tenancy {
        for (t, &want) in offered.iter().enumerate() {
            let got = report.stats.get_or_zero(&format!("tenant{t}.completed")) as u64;
            assert_eq!(
                got, want,
                "tenant {t} starved under the fault storm ({got}/{want} queries)"
            );
            kv(&format!("tenant {t} completed"), format!("{got}/{want}"));
        }
    }
    FaultRun {
        workload: wl.name().to_string(),
        report,
        summary,
    }
}

/// A single traced simulation of an experiment's representative
/// workload (see [`trace_run`]).
#[derive(Debug)]
pub struct TraceRun {
    /// The validated report, with `report.trace` populated.
    pub report: RunReport,
    /// Name of the workload that ran.
    pub workload: String,
    /// The exact configuration used (mesh dims, tile count).
    pub cfg: DeltaConfig,
    /// The program's task-type names, indexed by the type indices that
    /// appear in the trace (for labelling what-if tables).
    pub type_names: Vec<String>,
}

/// Runs one representative workload of experiment `id` with event
/// tracing enabled and returns the traced, validated report.
///
/// Tracing a whole sweep grid would interleave streams meaninglessly,
/// so `repro --trace` records one simulation chosen to exercise what
/// the experiment is about: the multicast-heavy experiments trace
/// `dtree`, the stealing experiment traces `merge_sort` with stealing
/// on, everything else traces `spmv`. Traced runs never touch the
/// result cache.
///
/// # Panics
///
/// Panics on an unknown id (the caller lists [`ALL`]).
pub fn trace_run(id: &str, scale: Scale) -> TraceRun {
    assert!(
        ALL.contains(&id),
        "unknown experiment '{id}' (known: {ALL:?})"
    );
    let (wl, tenancy): (Box<dyn Workload>, Option<TenancyConfig>) = match (id, scale) {
        ("fig_noc" | "fig_batch", Scale::Tiny) => (Box::new(DTree::tiny(SEED)), None),
        ("fig_noc" | "fig_batch", Scale::Small) => (Box::new(DTree::small(SEED)), None),
        ("fig_steal", Scale::Tiny) => (Box::new(MergeSort::tiny(SEED)), None),
        ("fig_steal", Scale::Small) => (Box::new(MergeSort::small(SEED)), None),
        ("fig_streams", Scale::Tiny) => (Box::new(QueryPlan::tiny(SEED)), None),
        ("fig_streams", Scale::Small) => (Box::new(QueryPlan::small(SEED)), None),
        ("fig_tenancy", _) => {
            // trace the thing the experiment is about: co-resident
            // paced tenants (TaskTenant events tag every spawn)
            let w = match scale {
                Scale::Tiny => RequestServer::tiny(2, 64, SEED),
                Scale::Small => RequestServer::small(2, 192, SEED),
            };
            let tc = w.tenancy(PartitionPolicy::Shared, 6, DrainPolicy::Block);
            (Box::new(w), Some(tc))
        }
        (_, Scale::Tiny) => (Box::new(Spmv::tiny(SEED)), None),
        (_, Scale::Small) => (Box::new(Spmv::small(SEED)), None),
    };
    let mut b = seeded(DeltaConfig::delta(TILES), wl.as_ref())
        .to_builder()
        .trace(true);
    if id == "fig_steal" {
        b = b.work_stealing(true);
    }
    if let Some(tc) = tenancy {
        b = b.tenancy(tc);
    }
    if id == "fig_faults" {
        // trace the thing the experiment is about: a run with live
        // fault injection and recovery (chaos preset)
        b = b.faults(FaultsConfig::chaos()).stall_limit(200_000);
    }
    let cfg = b.build();
    let type_names = wl
        .make_program()
        .task_types()
        .iter()
        .map(|t| t.name.clone())
        .collect();
    let report = crate::run_validated(wl.as_ref(), cfg.clone(), false);
    TraceRun {
        report,
        workload: wl.name().to_string(),
        cfg,
        type_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::parse_x;

    #[test]
    fn static_tables_render() {
        assert!(run("tbl_config", Scale::Tiny).contains("tiles"));
        assert!(run("tbl_area", Scale::Tiny).contains("taskstream overhead"));
        assert_eq!(run_doc("tbl_workloads", Scale::Tiny).rows.len(), 9);
    }

    #[test]
    fn overall_tiny_has_sane_shape() {
        let doc = run_doc("fig_overall", Scale::Tiny);
        let g = parse_x(doc.extra("geomean").expect("geomean extra")).expect("parsable");
        let gi = parse_x(doc.extra("irregular_geomean").expect("extra")).expect("parsable");
        assert!(g > 0.8, "geomean {g} collapsed");
        assert!(gi >= g * 0.9);
        assert_eq!(doc.rows.len(), 11); // 9 workloads + 2 geomean rows
    }

    #[test]
    fn flattened_sweep_matches_per_experiment_runs() {
        // The global-pool path must change wall-clock, never bytes.
        let ids = ["tbl_config", "fig_noc", "tbl_workloads"];
        let merged = run_docs(&ids, Scale::Tiny);
        for (id, doc) in ids.iter().zip(&merged) {
            assert_eq!(doc, &run_doc(id, Scale::Tiny));
        }
    }

    #[test]
    fn run_rejects_unknown_id() {
        let err = std::panic::catch_unwind(|| run("nope", Scale::Tiny));
        assert!(err.is_err());
    }

    #[test]
    fn derive_seed_is_stable_and_key_sensitive() {
        assert_eq!(derive_seed(SEED, "spmv"), derive_seed(SEED, "spmv"));
        assert_ne!(derive_seed(SEED, "spmv"), derive_seed(SEED, "bfs"));
        assert_ne!(derive_seed(SEED, "spmv"), derive_seed(SEED + 1, "spmv"));
    }
}
