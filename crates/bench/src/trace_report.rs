//! Renders a recorded event trace ([`ts_delta::TraceRecord`]) three
//! ways: as Chrome/Perfetto trace-event JSON (load the file in
//! <https://ui.perfetto.dev> or `chrome://tracing`), as a per-link NoC
//! occupancy heatmap, and as a memory-queue-depth timeseries. One
//! simulated cycle maps to one trace-viewer microsecond.
//!
//! The JSON is hand-rolled like the rest of the harness (the repo has
//! no serde): every payload field is a plain integer and the only
//! strings are names we generate, so exact emission is trivial.

use std::collections::HashMap;

use crate::Table;
use ts_delta::{TraceEvent, TraceRecord};

/// Router input-port names, indexed like `ts_noc::Mesh` ports (the
/// last port is local injection).
const PORT_NAMES: [&str; 5] = ["east", "west", "north", "south", "inject"];

/// Serializes a trace as Chrome trace-event JSON.
///
/// Layout: one process (`pid` 0) named after the workload; one thread
/// per tile carrying that tile's task spans (`ph: "X"`, dispatch to
/// completion); one extra "dispatcher" thread (`tid = tiles`) carrying
/// spawn/ready/steal instants; counter tracks (`ph: "C"`) for the
/// memory queues and every NoC link that ever reported a nonzero
/// depth. Pipe and multicast resolutions are instants on the consuming
/// tile's thread.
pub fn perfetto_json(workload: &str, tiles: usize, records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&ev);
    };

    push(
        &mut out,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_str(workload)
        ),
    );
    for t in 0..tiles {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
                 \"args\":{{\"name\":\"tile {t}\"}}}}"
            ),
        );
    }
    let disp_tid = tiles;
    push(
        &mut out,
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{disp_tid},\
             \"args\":{{\"name\":\"dispatcher\"}}}}"
        ),
    );

    // Task spans need both endpoints: collect type at spawn and start
    // cycle at dispatch, emit the "X" event at completion.
    let mut task_ty: HashMap<u64, usize> = HashMap::new();
    let mut task_start: HashMap<u64, u64> = HashMap::new();
    for r in records {
        let c = r.cycle;
        match r.event {
            TraceEvent::TaskSpawn { task, ty, parent } => {
                task_ty.insert(task, ty);
                let label = match parent {
                    Some(p) => format!("spawn task {task} (by task {p})"),
                    None => format!("spawn task {task}"),
                };
                push(&mut out, instant(c, disp_tid, &label));
            }
            TraceEvent::PipeBind {
                pipe,
                task,
                producer,
            } => {
                let role = if producer { "producer" } else { "consumer" };
                push(
                    &mut out,
                    instant(c, disp_tid, &format!("pipe {pipe} {role} task {task}")),
                );
            }
            TraceEvent::TaskTenant { task, tenant } => {
                push(
                    &mut out,
                    instant(c, disp_tid, &format!("task {task} tenant {tenant}")),
                );
            }
            TraceEvent::TaskReady { task } => {
                push(
                    &mut out,
                    instant(c, disp_tid, &format!("ready task {task}")),
                );
            }
            TraceEvent::TaskDispatch { task, .. } => {
                task_start.insert(task, c);
            }
            TraceEvent::TaskFire { task, tile } => {
                push(&mut out, instant(c, tile, &format!("fire task {task}")));
            }
            TraceEvent::TaskStalls { task, input, other } => {
                if input + other > 0 {
                    push(
                        &mut out,
                        instant(
                            c,
                            disp_tid,
                            &format!("task {task} stalls: input {input}, other {other}"),
                        ),
                    );
                }
            }
            TraceEvent::TaskComplete { task, tile } => {
                let start = task_start.remove(&task).unwrap_or(c);
                let ty = task_ty.get(&task).copied().unwrap_or(0);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"task {task}\",\"cat\":\"task\",\"ph\":\"X\",\
                         \"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{tile},\
                         \"args\":{{\"ty\":{ty}}}}}",
                        c.saturating_sub(start).max(1)
                    ),
                );
            }
            TraceEvent::StealAttempt { thief, victim } => {
                push(
                    &mut out,
                    instant(c, disp_tid, &format!("steal attempt {thief}<-{victim}")),
                );
            }
            TraceEvent::Steal {
                task,
                thief,
                victim,
            } => {
                push(
                    &mut out,
                    instant(c, thief, &format!("stole task {task} from tile {victim}")),
                );
            }
            TraceEvent::PipeDirect {
                pipe,
                consumer_node,
            } => {
                push(
                    &mut out,
                    instant(
                        c,
                        disp_tid,
                        &format!("pipe {pipe} direct to node {consumer_node}"),
                    ),
                );
            }
            TraceEvent::PipeSpill { pipe, base } => {
                push(
                    &mut out,
                    instant(c, disp_tid, &format!("pipe {pipe} spilled at {base:#x}")),
                );
            }
            TraceEvent::McastOpen { job, region, node } => {
                push(
                    &mut out,
                    instant(
                        c,
                        disp_tid,
                        &format!("mcast open job {job} region {region} node {node}"),
                    ),
                );
            }
            TraceEvent::McastJoin { job, region, node } => {
                push(
                    &mut out,
                    instant(
                        c,
                        disp_tid,
                        &format!("mcast join job {job} region {region} node {node}"),
                    ),
                );
            }
            TraceEvent::NocLink { node, port, depth } => {
                let pname = PORT_NAMES.get(port).copied().unwrap_or("?");
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"noc n{node} {pname}\",\"ph\":\"C\",\"ts\":{c},\
                         \"pid\":0,\"args\":{{\"depth\":{depth}}}}}"
                    ),
                );
            }
            TraceEvent::QueueDepth {
                admit,
                gated,
                backlog,
                dram_jobs,
                dram_inflight,
            } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"mem queues\",\"ph\":\"C\",\"ts\":{c},\"pid\":0,\
                         \"args\":{{\"admit\":{admit},\"gated\":{gated},\
                         \"backlog\":{backlog},\"dram_jobs\":{dram_jobs},\
                         \"dram_inflight\":{dram_inflight}}}}}"
                    ),
                );
            }
            TraceEvent::FaultTileDown { tile, until } => {
                let until = if until == u64::MAX {
                    "end of run".to_string()
                } else {
                    format!("cycle {until}")
                };
                push(
                    &mut out,
                    instant(c, tile, &format!("FAULT tile {tile} down until {until}")),
                );
            }
            TraceEvent::FaultFlitDropped { node } => {
                push(
                    &mut out,
                    instant(c, disp_tid, &format!("FAULT flit dropped at node {node}")),
                );
            }
            TraceEvent::TaskVictim { task, tile } => {
                // close the open span: the task left this tile without
                // completing, and will re-span from its re-dispatch
                let start = task_start.remove(&task).unwrap_or(c);
                let ty = task_ty.get(&task).copied().unwrap_or(0);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"task {task} (victim)\",\"cat\":\"task\",\"ph\":\"X\",\
                         \"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{tile},\
                         \"args\":{{\"ty\":{ty}}}}}",
                        c.saturating_sub(start).max(1)
                    ),
                );
            }
            TraceEvent::TaskRedispatch { task, tile } => {
                task_start.insert(task, c);
                push(
                    &mut out,
                    instant(c, tile, &format!("redispatch task {task}")),
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn instant(cycle: u64, tid: usize, name: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"i\",\"ts\":{cycle},\"pid\":0,\"tid\":{tid},\"s\":\"t\"}}",
        json_str(name)
    )
}

/// Minimal JSON string encoder for the names this module generates.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Aggregates the stride-sampled [`TraceEvent::NocLink`] events into a
/// per-link table: samples seen, peak depth, and mean depth over the
/// nonzero samples. Links that never reported occupancy are omitted
/// (the recorder only emits nonzero depths).
pub fn noc_heatmap(mesh_dims: (usize, usize), records: &[TraceRecord]) -> Table {
    let (w, _) = mesh_dims;
    // (node, port) -> (samples, peak, total)
    let mut links: HashMap<(usize, usize), (u64, usize, u64)> = HashMap::new();
    for r in records {
        if let TraceEvent::NocLink { node, port, depth } = r.event {
            let e = links.entry((node, port)).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 = e.1.max(depth);
            e.2 += depth as u64;
        }
    }
    let mut keys: Vec<(usize, usize)> = links.keys().copied().collect();
    keys.sort_unstable();
    let mut table = Table::new(&["node", "xy", "port", "samples", "peak", "mean"]);
    for (node, port) in keys {
        let (samples, peak, total) = links[&(node, port)];
        table.row(vec![
            node.to_string(),
            format!("({},{})", node % w, node / w),
            PORT_NAMES.get(port).copied().unwrap_or("?").to_string(),
            samples.to_string(),
            peak.to_string(),
            format!("{:.2}", total as f64 / samples as f64),
        ]);
    }
    if table.is_empty() {
        table.row(vec![
            "-".into(),
            "-".into(),
            "-".into(),
            "0".into(),
            "0".into(),
            "0.00".into(),
        ]);
    }
    table
}

/// Renders the stride-sampled [`TraceEvent::QueueDepth`] events as a
/// timeseries table, evenly downsampled to at most `max_rows` rows so
/// long runs stay readable.
pub fn queue_depth_table(records: &[TraceRecord], max_rows: usize) -> Table {
    let samples: Vec<(u64, usize, usize, usize, usize, usize)> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::QueueDepth {
                admit,
                gated,
                backlog,
                dram_jobs,
                dram_inflight,
            } => Some((r.cycle, admit, gated, backlog, dram_jobs, dram_inflight)),
            _ => None,
        })
        .collect();
    let mut table = Table::new(&[
        "cycle",
        "admit",
        "gated",
        "backlog",
        "dram jobs",
        "dram inflight",
    ]);
    let stride = samples.len().div_ceil(max_rows.max(1)).max(1);
    for (cycle, admit, gated, backlog, jobs, inflight) in samples.into_iter().step_by(stride) {
        table.row(vec![
            cycle.to_string(),
            admit.to_string(),
            gated.to_string(),
            backlog.to_string(),
            jobs.to_string(),
            inflight.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                cycle: 0,
                event: TraceEvent::TaskSpawn {
                    task: 0,
                    ty: 1,
                    parent: None,
                },
            },
            TraceRecord {
                cycle: 2,
                event: TraceEvent::TaskDispatch { task: 0, tile: 1 },
            },
            TraceRecord {
                cycle: 3,
                event: TraceEvent::TaskFire { task: 0, tile: 1 },
            },
            TraceRecord {
                cycle: 9,
                event: TraceEvent::TaskComplete { task: 0, tile: 1 },
            },
            TraceRecord {
                cycle: 256,
                event: TraceEvent::NocLink {
                    node: 2,
                    port: 4,
                    depth: 3,
                },
            },
            TraceRecord {
                cycle: 256,
                event: TraceEvent::QueueDepth {
                    admit: 1,
                    gated: 0,
                    backlog: 2,
                    dram_jobs: 1,
                    dram_inflight: 5,
                },
            },
        ]
    }

    #[test]
    fn perfetto_json_has_span_and_counters() {
        let json = perfetto_json("demo \"wl\"", 2, &sample_records());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":7"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("demo \\\"wl\\\""));
        // crude structural check: balanced braces and brackets
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn heatmap_and_queue_tables_render() {
        let recs = sample_records();
        let hm = noc_heatmap((2, 2), &recs);
        assert_eq!(hm.len(), 1);
        assert!(hm.to_string().contains("inject"));
        let q = queue_depth_table(&recs, 8);
        assert_eq!(q.len(), 1);
        assert!(q.to_string().contains("256"));
    }

    #[test]
    fn queue_table_downsamples() {
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord {
                cycle: i * 256,
                event: TraceEvent::QueueDepth {
                    admit: 0,
                    gated: 0,
                    backlog: 0,
                    dram_jobs: 0,
                    dram_inflight: 0,
                },
            })
            .collect();
        let q = queue_depth_table(&recs, 10);
        assert!(q.len() <= 10, "got {} rows", q.len());
    }
}
