//! Renders the causal what-if profiler ([`ts_delta::whatif`]) for the
//! CLI: the run summary, the ranked bottleneck table, the
//! virtual-speedup query table, and the machine-readable summary rows
//! that get wired into `BENCH_sweep.json`.

use crate::experiments::TraceRun;
use crate::Table;
use ts_delta::whatif::{Query, WhatIf};

/// A query plus its printable label.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// Rendered in the query table's first column.
    pub label: String,
    /// The re-weighting to evaluate.
    pub query: Query,
}

/// Parses one `--speedup` argument against the run's type names.
/// Two spellings: `<type>:<pct>` (`"sum:25"` → type index of `sum`,
/// 25% faster) and `task:<id>:<pct>` (`"task:17:25"` → the single task
/// instance with trace id 17, 25% faster). Returns an error message
/// suitable for the CLI on bad input.
pub fn parse_speedup(spec: &str, type_names: &[String]) -> Result<LabeledQuery, String> {
    let (name, pct) = spec
        .split_once(':')
        .ok_or_else(|| format!("--speedup wants <type>:<pct> or task:<id>:<pct>, got '{spec}'"))?;
    if name == "task" {
        let (id, pct) = pct
            .split_once(':')
            .ok_or_else(|| format!("--speedup task wants task:<id>:<pct>, got '{spec}'"))?;
        let task: u64 = id
            .parse()
            .map_err(|_| format!("--speedup task id '{id}' is not an integer"))?;
        let pct = parse_pct(pct)?;
        return Ok(LabeledQuery {
            label: format!("task {task} {pct}% faster"),
            query: Query::InstanceSpeedup { task, pct },
        });
    }
    let ty = type_names
        .iter()
        .position(|n| n == name)
        .ok_or_else(|| format!("unknown task type '{name}' (this run has: {type_names:?})"))?;
    let pct = parse_pct(pct)?;
    Ok(LabeledQuery {
        label: format!("{name} {pct}% faster"),
        query: Query::TypeSpeedup { ty, pct },
    })
}

fn parse_pct(pct: &str) -> Result<f64, String> {
    let v: f64 = pct
        .parse()
        .map_err(|_| format!("--speedup percentage '{pct}' is not a number"))?;
    if !(0.0..=100.0).contains(&v) {
        return Err(format!("--speedup percentage {v} outside [0, 100]"));
    }
    Ok(v)
}

/// The default query battery when the caller names none: every task
/// type 50% faster, memory stalls halved, spawn handoff halved, and
/// free recovery re-dispatches.
pub fn default_queries(type_names: &[String]) -> Vec<LabeledQuery> {
    let mut out: Vec<LabeledQuery> = type_names
        .iter()
        .enumerate()
        .map(|(ty, name)| LabeledQuery {
            label: format!("{name} 50% faster"),
            query: Query::TypeSpeedup { ty, pct: 50.0 },
        })
        .collect();
    out.push(LabeledQuery {
        label: "memory/NoC 2x faster".into(),
        query: Query::MemScale { factor: 2.0 },
    });
    out.push(LabeledQuery {
        label: "spawn/host 2x faster".into(),
        query: Query::SpawnScale { factor: 2.0 },
    });
    out.push(LabeledQuery {
        label: "redispatches free".into(),
        query: Query::FreeRedispatch,
    });
    out
}

/// Builds the analysis for a traced run.
pub fn analyze(run: &TraceRun) -> WhatIf {
    WhatIf::from_trace(&run.report.trace, run.cfg.tiles, run.report.cycles)
}

/// Key-value run summary: DAG size, work/span, parallelism slack.
pub fn summary_table(w: &WhatIf) -> Table {
    let mut t = Table::new(&["metric", "value"]);
    let mut kv = |k: &str, v: String| t.row(vec![k.into(), v]);
    kv("tasks (DAG nodes)", w.nodes.len().to_string());
    kv("dependence edges", w.edges.len().to_string());
    kv("measured cycles", w.measured_cycles.to_string());
    kv("total work (cycles)", w.work().to_string());
    kv("critical path (cycles)", w.span().to_string());
    kv("parallelism (work/span)", format!("{:.2}", w.parallelism()));
    kv("tiles", w.tiles.to_string());
    let slack = w.parallelism() / w.tiles as f64;
    kv("parallelism slack (vs tiles)", format!("{slack:.2}"));
    let bound = if w.parallelism() >= w.tiles as f64 {
        "throughput-bound (work/tiles)"
    } else {
        "span-bound (critical path)"
    };
    kv("binding constraint", bound.into());
    kv("steals", w.steals.to_string());
    kv("mcast joins", w.mcast_joins.to_string());
    kv("clamped segments", w.clamped_segments.to_string());
    t
}

/// The ranked bottleneck table (one row per task type).
pub fn bottleneck_table(w: &WhatIf, type_names: &[String]) -> Table {
    let mut t = Table::new(&[
        "task type",
        "tasks",
        "work",
        "work %",
        "crit path",
        "crit %",
        "input-stall %",
        "speedup@50%",
    ]);
    for b in w.bottlenecks() {
        let name = type_names
            .get(b.ty)
            .cloned()
            .unwrap_or_else(|| format!("type {}", b.ty));
        t.row(vec![
            name,
            b.tasks.to_string(),
            b.work.to_string(),
            format!("{:.1}", b.work_share * 100.0),
            b.crit.to_string(),
            format!("{:.1}", b.crit_share * 100.0),
            format!("{:.1}", b.stall_input_share * 100.0),
            crate::fmt_x(b.speedup_at_50),
        ]);
    }
    t
}

/// The virtual-speedup query table.
pub fn query_table(w: &WhatIf, queries: &[LabeledQuery]) -> Table {
    let mut t = Table::new(&[
        "what if",
        "span",
        "work",
        "predicted cycles",
        "predicted speedup",
    ]);
    for lq in queries {
        let p = w.evaluate(&[lq.query]);
        t.row(vec![
            lq.label.clone(),
            format!("{:.0}", p.span),
            format!("{:.0}", p.work),
            format!("{:.0}", p.predicted_cycles),
            crate::fmt_x(p.speedup),
        ]);
    }
    t
}

/// One experiment's summary as a JSON object (hand-rolled like the
/// rest of the harness) for the bench-json `whatif` section.
pub fn summary_json(id: &str, run: &TraceRun, w: &WhatIf, queries: &[LabeledQuery]) -> String {
    let mut q_parts: Vec<String> = Vec::with_capacity(queries.len());
    for lq in queries {
        let p = w.evaluate(&[lq.query]);
        q_parts.push(format!(
            "{{\"label\": \"{}\", \"predicted_cycles\": {:.0}, \"speedup\": {:.4}}}",
            lq.label, p.predicted_cycles, p.speedup
        ));
    }
    let top = w
        .bottlenecks()
        .first()
        .map(|b| {
            run.type_names
                .get(b.ty)
                .cloned()
                .unwrap_or_else(|| format!("type {}", b.ty))
        })
        .unwrap_or_else(|| "-".into());
    format!(
        "{{\"id\": \"{id}\", \"workload\": \"{}\", \"cycles\": {}, \"work\": {}, \
         \"span\": {}, \"parallelism\": {:.4}, \"clamped_segments\": {}, \
         \"top_bottleneck\": \"{top}\", \"queries\": [{}]}}",
        run.workload,
        w.measured_cycles,
        w.work(),
        w.span(),
        w.parallelism(),
        w.clamped_segments,
        q_parts.join(", ")
    )
}

/// Splices the per-experiment summary rows into a bench-json document
/// as a `"whatif"` section: appended as the final key of an existing
/// sweep JSON (a previous `"whatif"` section is replaced, so re-runs
/// are idempotent), or a minimal standalone object when there is no
/// existing file. The splice is textual — the harness has no JSON
/// parser — and relies on the sweep writer's fixed shape: a single
/// top-level object whose `"whatif"` key, if present, is last.
pub fn merge_section(existing: Option<&str>, rows: &[String]) -> String {
    let section = format!("\"whatif\": [\n    {}\n  ]", rows.join(",\n    "));
    let prefix = match existing {
        Some(text) => {
            let mut t = text.trim_end().to_string();
            if let Some(pos) = t.find("\"whatif\":") {
                t.truncate(pos);
            } else if t.ends_with('}') {
                t.pop();
            } else {
                // not a JSON object we understand — start standalone
                t = "{".into();
            }
            let t = t.trim_end().trim_end_matches(',').trim_end();
            if t == "{" {
                t.to_string()
            } else {
                format!("{t},")
            }
        }
        None => "{".into(),
    };
    format!("{prefix}\n  {section}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["gather".into(), "reduce".into()]
    }

    #[test]
    fn speedup_parsing_round_trips() {
        let q = parse_speedup("reduce:25", &names()).unwrap();
        assert_eq!(q.query, Query::TypeSpeedup { ty: 1, pct: 25.0 });
        assert!(q.label.contains("reduce"));
        assert!(parse_speedup("reduce", &names()).is_err());
        assert!(parse_speedup("nope:25", &names()).is_err());
        assert!(parse_speedup("reduce:elephant", &names()).is_err());
        assert!(parse_speedup("reduce:150", &names()).is_err());
    }

    #[test]
    fn per_instance_speedup_parsing_round_trips() {
        let q = parse_speedup("task:17:25", &names()).unwrap();
        assert_eq!(
            q.query,
            Query::InstanceSpeedup {
                task: 17,
                pct: 25.0
            }
        );
        assert!(q.label.contains("task 17"));
        assert!(parse_speedup("task:17", &names()).is_err());
        assert!(parse_speedup("task:zebra:25", &names()).is_err());
        assert!(parse_speedup("task:17:150", &names()).is_err());
        assert!(parse_speedup("task:17:nope", &names()).is_err());
    }

    #[test]
    fn default_battery_covers_every_type_plus_machine_queries() {
        let qs = default_queries(&names());
        assert_eq!(qs.len(), 2 + 3);
        assert!(qs.iter().any(|q| q.label.contains("gather")));
        assert!(qs.iter().any(|q| matches!(q.query, Query::MemScale { .. })));
    }

    #[test]
    fn merge_writes_a_standalone_object_without_an_existing_file() {
        let rows = vec!["{\"id\": \"a\"}".to_string()];
        let out = merge_section(None, &rows);
        assert_eq!(out, "{\n  \"whatif\": [\n    {\"id\": \"a\"}\n  ]\n}\n");
    }

    #[test]
    fn merge_appends_as_the_final_key_of_a_sweep_json() {
        let sweep = "{\n  \"scale\": \"tiny\",\n  \"experiments\": [\n  ]\n}\n";
        let rows = vec!["{\"id\": \"a\"}".to_string(), "{\"id\": \"b\"}".to_string()];
        let out = merge_section(Some(sweep), &rows);
        assert!(out.starts_with("{\n  \"scale\": \"tiny\""));
        assert!(out.contains("],\n  \"whatif\": [\n    {\"id\": \"a\"},\n    {\"id\": \"b\"}"));
        assert!(out.trim_end().ends_with('}'));
        // exactly one whatif key, closed object
        assert_eq!(out.matches("\"whatif\"").count(), 1);
    }

    #[test]
    fn merge_replaces_a_previous_whatif_section() {
        let sweep = "{\n  \"scale\": \"tiny\",\n  \"experiments\": [\n  ]\n}\n";
        let once = merge_section(Some(sweep), &["{\"id\": \"old\"}".to_string()]);
        let twice = merge_section(Some(&once), &["{\"id\": \"new\"}".to_string()]);
        assert_eq!(twice.matches("\"whatif\"").count(), 1);
        assert!(twice.contains("new"));
        assert!(!twice.contains("old"));
        assert!(twice.starts_with("{\n  \"scale\": \"tiny\""));
    }
}
