//! Golden-report serialization, diffing, and machine-checkable shape
//! assertions.
//!
//! Every experiment's rendered table is captured as a [`GoldenDoc`] —
//! the column headers, every cell, and any trailer values (the
//! headline geomeans) — and serialized to a committed `goldens/*.json`
//! file. `repro --check-goldens` re-runs the experiments and diffs the
//! fresh docs cell by cell against the committed ones;
//! `repro --bless` regenerates them after an intentional model change.
//!
//! The documents double as executable paper claims:
//! [`GoldenDoc::shape_violations`] asserts the machine-level shapes the
//! evaluation leans on (irregular-subset geomean band, gemm parity,
//! dtree multicast savings) independently of the exact cell values, so
//! a blessed-but-broken golden still fails the gate.
//!
//! The container has no JSON dependency, so the format is hand-rolled:
//! a single object of string/array values (see [`GoldenDoc::to_json`]),
//! parsed back by a small recursive-descent reader.

use crate::Table;

/// One experiment's table, in diffable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenDoc {
    /// Experiment id (`fig_overall`, ...).
    pub id: String,
    /// Scale the experiment ran at (`tiny` / `small`).
    pub scale: String,
    /// Table column headers.
    pub headers: Vec<String>,
    /// Table cells, row-major, exactly as rendered.
    pub rows: Vec<Vec<String>>,
    /// Non-table outputs rendered alongside (e.g. the headline
    /// geomeans), as ordered `(key, displayed value)` pairs.
    pub extras: Vec<(String, String)>,
}

impl GoldenDoc {
    /// Builds a doc from a rendered table plus trailer values.
    pub fn new(id: &str, scale: &str, table: &Table, extras: Vec<(String, String)>) -> Self {
        GoldenDoc {
            id: id.to_string(),
            scale: scale.to_string(),
            headers: table.headers().to_vec(),
            rows: table.rows().to_vec(),
            extras,
        }
    }

    /// Rebuilds the renderable table.
    pub fn table(&self) -> Table {
        Table::from_parts(self.headers.clone(), self.rows.clone())
    }

    /// Looks up an extra by key.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First cell of each row (the row labels).
    fn row_label(&self, i: usize) -> &str {
        self.rows[i].first().map_or("", |c| c.as_str())
    }

    /// Finds the cell at (row labelled `label`, column named `col`).
    fn cell(&self, label: &str, col: &str) -> Option<&str> {
        let c = self.headers.iter().position(|h| h == col)?;
        self.rows
            .iter()
            .find(|r| r.first().is_some_and(|l| l == label))
            .and_then(|r| r.get(c))
            .map(|s| s.as_str())
    }

    // ------------------------------------------------------------- diff

    /// Compares `self` (the committed golden) against a freshly
    /// generated doc, returning one readable message per divergent
    /// cell (empty when identical).
    pub fn diff(&self, current: &GoldenDoc) -> Vec<String> {
        let mut out = Vec::new();
        let ctx = format!("{} ({})", self.id, self.scale);
        if self.headers != current.headers {
            out.push(format!(
                "{ctx}: headers changed: golden {:?} vs current {:?}",
                self.headers, current.headers
            ));
            return out; // cell positions are meaningless now
        }
        if self.rows.len() != current.rows.len() {
            out.push(format!(
                "{ctx}: row count changed: golden {} vs current {}",
                self.rows.len(),
                current.rows.len()
            ));
        }
        for (i, (g, c)) in self.rows.iter().zip(&current.rows).enumerate() {
            for (col, (gv, cv)) in self.headers.iter().zip(g.iter().zip(c)) {
                if gv != cv {
                    out.push(format!(
                        "{ctx}: row {i} '{}', col '{col}': golden '{gv}' != current '{cv}'",
                        self.row_label(i)
                    ));
                }
            }
        }
        for (k, gv) in &self.extras {
            match current.extra(k) {
                Some(cv) if cv == gv => {}
                Some(cv) => out.push(format!(
                    "{ctx}: extra '{k}': golden '{gv}' != current '{cv}'"
                )),
                None => out.push(format!("{ctx}: extra '{k}' missing from current run")),
            }
        }
        for (k, _) in &current.extras {
            if self.extra(k).is_none() {
                out.push(format!("{ctx}: extra '{k}' not present in golden"));
            }
        }
        out
    }

    // -------------------------------------------- shape assertions

    /// Checks the machine-level shapes the paper-facing claims rest
    /// on, independent of exact cell values:
    ///
    /// * `fig_overall`: the irregular-subset geomean sits inside the
    ///   claimed band, and `gemm` — a regular workload with nothing for
    ///   TaskStream to recover — stays at parity (`1.00x`);
    /// * `fig_noc`: multicast saves at least the claimed fraction of
    ///   `dtree`'s DRAM reads.
    ///
    /// Experiments without claims return no violations.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let ctx = format!("{} ({})", self.id, self.scale);
        let tiny = self.scale == "tiny";
        match self.id.as_str() {
            "fig_overall" => {
                // speedup bands: wide enough to absorb model tuning,
                // tight enough that a collapsed mechanism fails
                let (lo, hi) = if tiny { (1.2, 3.5) } else { (1.4, 3.0) };
                match self.cell("geomean (irregular)", "speedup").map(parse_x) {
                    Some(Some(g)) if g >= lo && g <= hi => {}
                    Some(Some(g)) => out.push(format!(
                        "{ctx}: irregular geomean {g:.2}x outside the claimed band [{lo}x, {hi}x]"
                    )),
                    _ => out.push(format!("{ctx}: no parsable 'geomean (irregular)' speedup")),
                }
                match self.cell("gemm", "speedup") {
                    Some("1.00x") => {}
                    Some(v) => out.push(format!(
                        "{ctx}: gemm speedup '{v}' != '1.00x' — a regular workload must stay at parity"
                    )),
                    None => out.push(format!("{ctx}: no gemm row")),
                }
            }
            "fig_noc" => {
                // multicast recovery of dtree's shared node reads
                let min = if tiny { 40.0 } else { 50.0 };
                match self.cell("dtree", "saved").map(parse_pct) {
                    Some(Some(p)) if p >= min => {}
                    Some(Some(p)) => out.push(format!(
                        "{ctx}: dtree multicast saves only {p:.0}% of DRAM reads (claim: >= {min:.0}%)"
                    )),
                    _ => out.push(format!("{ctx}: no parsable dtree 'saved' cell")),
                }
            }
            "fig_faults" => {
                // graceful degradation: at every nonzero fault rate
                // Delta completes and loses strictly fewer cycles than
                // the no-recovery baseline (wedged = lost everything)
                for row in &self.rows {
                    let rate = row.first().map_or("", |c| c.as_str());
                    if rate.is_empty() || rate == "0.000" {
                        continue;
                    }
                    let cell = |col: &str| {
                        self.headers
                            .iter()
                            .position(|h| h == col)
                            .and_then(|c| row.get(c))
                            .map(|s| s.as_str())
                    };
                    let delta_lost = cell("delta lost").and_then(|v| v.parse::<u64>().ok());
                    match (delta_lost, cell("static lost")) {
                        (None, _) => out.push(format!(
                            "{ctx}: rate {rate}: Delta did not complete with a parsable cycle loss"
                        )),
                        (Some(_), Some("wedged")) => {}
                        (Some(d), Some(s)) => match s.parse::<u64>() {
                            Ok(s) if d < s => {}
                            Ok(s) => out.push(format!(
                                "{ctx}: rate {rate}: Delta lost {d} cycles, not strictly fewer \
                                 than the baseline's {s}"
                            )),
                            Err(_) => out.push(format!(
                                "{ctx}: rate {rate}: unparsable 'static lost' cell '{s}'"
                            )),
                        },
                        (Some(_), None) => {
                            out.push(format!("{ctx}: rate {rate}: no 'static lost' cell"))
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }

    // ------------------------------------------------------------- json

    /// Serializes to the committed golden format.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        s.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        s.push_str(&format!(
            "  \"headers\": [{}],\n",
            self.headers
                .iter()
                .map(|h| json_str(h))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            s.push_str(&format!(
                "    [{}]{comma}\n",
                row.iter()
                    .map(|c| json_str(c))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"extras\": [\n");
        for (i, (k, v)) in self.extras.iter().enumerate() {
            let comma = if i + 1 < self.extras.len() { "," } else { "" };
            s.push_str(&format!("    [{}, {}]{comma}\n", json_str(k), json_str(v)));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a committed golden file.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing/ill-typed
    /// field.
    pub fn from_json(text: &str) -> Result<GoldenDoc, String> {
        let value = Parser::new(text).parse()?;
        let obj = value.as_obj().ok_or("top level must be an object")?;
        let field = |name: &str| {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{name}'"))
        };
        let str_field = |name: &str| -> Result<String, String> {
            field(name)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field '{name}' must be a string"))
        };
        let str_list = |v: &Json, what: &str| -> Result<Vec<String>, String> {
            v.as_arr()
                .ok_or_else(|| format!("{what} must be an array"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what} must contain strings"))
                })
                .collect()
        };
        let headers = str_list(field("headers")?, "'headers'")?;
        let rows = field("rows")?
            .as_arr()
            .ok_or("'rows' must be an array")?
            .iter()
            .map(|r| str_list(r, "'rows' entries"))
            .collect::<Result<Vec<_>, _>>()?;
        let extras = field("extras")?
            .as_arr()
            .ok_or("'extras' must be an array")?
            .iter()
            .map(|e| {
                let pair = str_list(e, "'extras' entries")?;
                match <[String; 2]>::try_from(pair) {
                    Ok([k, v]) => Ok((k, v)),
                    Err(_) => Err("'extras' entries must be [key, value] pairs".to_string()),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(GoldenDoc {
            id: str_field("id")?,
            scale: str_field("scale")?,
            headers,
            rows,
            extras,
        })
    }
}

/// Parses a `"1.58x"`-style ratio cell.
pub fn parse_x(s: &str) -> Option<f64> {
    s.strip_suffix('x')?.parse().ok()
}

/// Parses a `"73%"`-style percentage cell.
pub fn parse_pct(s: &str) -> Option<f64> {
    s.strip_suffix('%')?.parse().ok()
}

/// Escapes and quotes one JSON string. Non-ASCII text (the timeline
/// sparklines) passes through as raw UTF-8. Shared with the result
/// cache's on-disk format (`crate::cache`).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The sliver of JSON the golden format uses: strings, arrays, and
/// string-keyed objects. Numbers are deliberately absent — everything
/// numeric is encoded as a string by the writers. Shared with the
/// result cache's on-disk format (`crate::cache`).
pub(crate) enum Json {
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub(crate) fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Byte-indexed recursive-descent parser for the strings-only JSON
/// subset. Operates directly on the UTF-8 bytes (goldens and cache
/// entries are ASCII-heavy; multi-byte sequences only ever appear
/// inside string literals, where their bytes are >= 0x80 and can never
/// be mistaken for a quote or backslash), with a copy-free fast path
/// for escape-free strings — the overwhelmingly common case.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    pub(crate) fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing input at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            c => Err(format!(
                "unexpected '{}' at byte {} (goldens hold only strings, arrays, objects)",
                c as char, self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        // Fast path: no escapes — the literal is a verbatim slice.
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string literal")?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        // Slow path: unescape into a scratch buffer.
        let mut out = self.bytes[start..self.pos].to_vec();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string literal")?;
            self.pos += 1;
            match b {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into())
                }
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape sequence")?;
                    self.pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            self.pos = end;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            let ch = char::from_u32(code).ok_or("bad \\u code point")?;
                            out.extend_from_slice(ch.encode_utf8(&mut [0u8; 4]).as_bytes());
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                b => out.push(b),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos, c as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos, c as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GoldenDoc {
        let mut t = Table::new(&["workload", "speedup"]);
        t.row(vec!["spmv".into(), "1.40x".into()]);
        t.row(vec!["a \"quoted\"\\name".into(), "▁▂█".into()]);
        GoldenDoc::new(
            "fig_test",
            "tiny",
            &t,
            vec![("geomean".into(), "1.58x".into())],
        )
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let doc = sample();
        let back = GoldenDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn identical_docs_have_no_diff() {
        assert!(sample().diff(&sample()).is_empty());
    }

    #[test]
    fn cell_drift_is_reported_per_cell() {
        let golden = sample();
        let mut current = sample();
        current.rows[0][1] = "1.39x".into();
        let d = golden.diff(&current);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("row 0 'spmv'"), "got: {}", d[0]);
        assert!(d[0].contains("'1.40x' != current '1.39x'"), "got: {}", d[0]);
    }

    #[test]
    fn extra_drift_is_reported() {
        let golden = sample();
        let mut current = sample();
        current.extras[0].1 = "1.60x".into();
        let d = golden.diff(&current);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("extra 'geomean'"), "got: {}", d[0]);
    }

    #[test]
    fn header_change_short_circuits() {
        let golden = sample();
        let mut current = sample();
        current.headers[1] = "ratio".into();
        let d = golden.diff(&current);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("headers changed"));
    }

    #[test]
    fn parse_helpers() {
        assert_eq!(parse_x("1.58x"), Some(1.58));
        assert_eq!(parse_x("1.58"), None);
        assert_eq!(parse_pct("73%"), Some(73.0));
        assert_eq!(parse_pct("n/a"), None);
    }

    #[test]
    fn shape_check_flags_gemm_drift() {
        let mut t = Table::new(&["workload", "speedup"]);
        t.row(vec!["gemm".into(), "1.07x".into()]);
        t.row(vec!["geomean (irregular)".into(), "1.80x".into()]);
        let doc = GoldenDoc::new("fig_overall", "small", &t, vec![]);
        let v = doc.shape_violations();
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("gemm"));
    }

    #[test]
    fn shape_check_flags_collapsed_geomean() {
        let mut t = Table::new(&["workload", "speedup"]);
        t.row(vec!["gemm".into(), "1.00x".into()]);
        t.row(vec!["geomean (irregular)".into(), "1.05x".into()]);
        let doc = GoldenDoc::new("fig_overall", "small", &t, vec![]);
        let v = doc.shape_violations();
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("irregular geomean"));
    }

    #[test]
    fn shape_check_passes_claimed_values() {
        let mut t = Table::new(&["workload", "speedup"]);
        t.row(vec!["gemm".into(), "1.00x".into()]);
        t.row(vec!["geomean (irregular)".into(), "1.80x".into()]);
        let doc = GoldenDoc::new("fig_overall", "small", &t, vec![]);
        assert!(doc.shape_violations().is_empty());

        let mut t = Table::new(&["workload", "saved"]);
        t.row(vec!["dtree".into(), "73%".into()]);
        let doc = GoldenDoc::new("fig_noc", "small", &t, vec![]);
        assert!(doc.shape_violations().is_empty());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(GoldenDoc::from_json("{").is_err());
        assert!(GoldenDoc::from_json("[]").is_err());
        assert!(GoldenDoc::from_json("{\"id\": \"x\"}").is_err());
        assert!(GoldenDoc::from_json("{\"id\": 3}").is_err());
    }
}
