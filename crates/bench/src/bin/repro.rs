//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro                     # run everything at the default (small) scale
//! repro fig_overall         # one experiment
//! repro --tiny              # everything, test-sized instances
//! repro --jobs 8            # run each experiment's sweep on 8 threads
//! repro --bench-json out.json   # also write machine-readable timings
//! ```
//!
//! `--jobs 1` reproduces the fully serial behavior; any `--jobs N`
//! prints byte-identical tables (per-job seeds are derived from the
//! job key, never from sweep iteration order).

use std::time::Instant;
use ts_bench::experiments::{self, ALL};
use ts_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut jobs: Option<usize> = None;
    let mut bench_json: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => scale = Scale::Tiny,
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                jobs = Some(v.parse().expect("--jobs value must be an integer"));
            }
            "--bench-json" => {
                bench_json = Some(it.next().expect("--bench-json needs a path"));
            }
            s if s.starts_with("--") => eprintln!("ignoring unknown flag {s}"),
            _ => wanted.push(a),
        }
    }
    if let Some(n) = jobs {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("building the global thread pool");
    }
    let ids: Vec<&str> = if wanted.is_empty() {
        ALL.to_vec()
    } else {
        wanted.iter().map(|s| s.as_str()).collect()
    };

    let t_all = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for id in ids {
        let t0 = Instant::now();
        let out = experiments::run(id, scale);
        timings.push((id.to_string(), t0.elapsed().as_secs_f64()));
        println!("=== {id} ===");
        println!("{out}");
        println!("  ({:.1?})\n", t0.elapsed());
    }
    let total = t_all.elapsed().as_secs_f64();

    if let Some(path) = bench_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            if scale == Scale::Tiny { "tiny" } else { "small" }
        ));
        json.push_str(&format!("  \"jobs\": {},\n", rayon::current_num_threads()));
        json.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
        json.push_str("  \"experiments\": [\n");
        for (i, (id, secs)) in timings.iter().enumerate() {
            let comma = if i + 1 < timings.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"id\": \"{id}\", \"seconds\": {secs:.3}}}{comma}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("writing the bench json");
        eprintln!("wrote {path}");
    }
}
