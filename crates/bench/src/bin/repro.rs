//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro sweep                    # run everything at the default (small) scale
//! repro sweep fig_overall        # one experiment
//! repro sweep --only fig_noc,fig_batch  # comma-separated selection
//! repro sweep --tiny             # everything, test-sized instances
//! repro sweep --jobs 8           # run the flattened sweep on 8 threads
//! repro sweep --profile          # also print per-experiment cycle attribution
//! repro sweep --bench-json out.json  # also write machine-readable timings
//! repro sweep --no-cache         # ignore the persistent result cache
//! repro sweep --no-active-set    # disable active-set scheduling (A/B reference)
//! repro sweep --no-idle-skip     # disable the next-event jump (A/B reference)
//! repro goldens check            # diff results against goldens/, exit 1 on drift
//! repro goldens bless            # regenerate the committed goldens/ files
//! repro cache stats              # show the result cache's location and size
//! repro cache clear              # drop every cached result
//! repro trace fig_noc            # trace one run, write TRACE_fig_noc.json
//! repro faults fig_overall       # chaos-preset fault run, write FAULTS_*.txt
//! repro whatif fig_overall       # causal profile, write WHATIF_fig_overall.txt
//! repro whatif fig_grain --speedup sum:25  # a specific virtual-speedup query
//! ```
//!
//! The pre-subcommand spellings remain as hidden aliases: a bare
//! `repro [experiment ...]` sweeps, and `--check-goldens`, `--bless`,
//! and `--trace <experiment>` behave exactly as they used to. Unknown
//! flags and unknown experiment ids exit with status 2.
//!
//! A sweep is **flattened**: every experiment is planned first, then
//! every (experiment × grid-cell × fault-rate) simulation runs as one
//! stealable task in a single global work-stealing pool, and the
//! tables are assembled afterwards from the order-preserved outcomes.
//! `--jobs 1` reproduces the fully serial behavior; any `--jobs N`
//! prints byte-identical tables (per-job seeds are derived from the
//! job key, never from sweep iteration order). Tables and profiles go
//! to stdout; timings, host counters, and file notices go to stderr,
//! so sweep stdout is byte-for-byte reproducible.
//!
//! Sweeps also consult the **persistent result cache** (default
//! `./.ts-cache`, override with `TS_CACHE_DIR`): each simulation is
//! keyed by the hash of its full configuration, program content, and a
//! build salt, so a warm re-run answers from disk with byte-identical
//! output. `--no-cache` opts a run out; `repro cache stats|clear`
//! inspects and empties the store.
//!
//! `--profile` reports, per experiment, how the simulator spent its
//! cycles: the fraction of each component's cycles that were densely
//! ticked versus replayed in closed form by active-set scheduling, and
//! the fraction of machine cycles covered by next-event jumps. The
//! same counters land in the `--bench-json` output.
//!
//! `goldens check` compares every experiment, cell by cell, against
//! the committed `goldens/<scale>/<id>.json` snapshot and additionally
//! asserts the machine-level shapes the paper claims rest on (see
//! `ts_bench::golden`). Violations are printed, written to
//! `GOLDEN_diff.txt`, and the process exits nonzero; a passing check
//! removes any stale `GOLDEN_diff.txt` from a previous failure. After
//! an intentional model change, `goldens bless` rewrites the snapshots.
//!
//! `trace <experiment>` runs one representative simulation of the
//! experiment with event tracing enabled, writes the stream as
//! Chrome/Perfetto trace-event JSON to `TRACE_<experiment>.json`
//! (open it in <https://ui.perfetto.dev> or `chrome://tracing`), and
//! prints two derived reports: a per-link NoC occupancy heatmap and
//! the memory-queue depth timeseries. Tracing never changes results —
//! the report is bit-identical with the recorder on or off.
//!
//! `faults <experiment>` runs the experiment's representative workload
//! under the all-faults chaos preset (`FaultsConfig::chaos`: tile
//! fail-stops, transient stalls, flit loss, DRAM retries, recovery
//! on), requires it to complete and validate against both the
//! workload reference and the untimed oracle, prints the
//! injection/recovery summary, and writes it to
//! `FAULTS_<experiment>.txt`. `--rate <r>` overrides the preset's tile
//! fail-stop rate.
//!
//! `whatif [experiment ...]` is the causal profiler: it reconstructs
//! the task dependence DAG from a traced run (`ts_delta::whatif`) and
//! prints the run summary, the ranked bottleneck table, and the
//! virtual-speedup query table, writing each to
//! `WHATIF_<experiment>.txt` and optionally merging summary rows into
//! a sweep JSON (`--bench-json`).
//!
//! Every report-writing subcommand resolves its output directory as
//! `--out-dir`, else `$TS_OUT_DIR`, else the working directory.
//! Relative `--out-dir`/`TS_OUT_DIR`/`TS_CACHE_DIR` values are
//! anchored to the startup working directory exactly once, so the
//! paths a run reports are the paths it actually wrote.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;
use ts_bench::experiments::{self, ALL};
use ts_bench::golden::GoldenDoc;
use ts_bench::profile;
use ts_delta::SimProfile;
use ts_workloads::Scale;

const USAGE: &str = "\
usage: repro <command> [args]

commands:
  sweep [experiment ...]            run experiments and print their tables
  goldens check [experiment ...]    diff results against goldens/, exit 1 on drift
  goldens bless [experiment ...]    regenerate the committed goldens/ files
  cache <stats|clear>               inspect or empty the persistent result cache
  trace <experiment>                trace one run, write TRACE_<experiment>.json
  faults <experiment>               chaos fault run, write FAULTS_<experiment>.txt
  whatif [experiment ...]           causal profile, write WHATIF_<experiment>.txt

common flags (sweep and goldens):
  --tiny                 run test-sized instances (default: small)
  --jobs <n>             worker threads for the flattened sweep pool
  --only <id>[,<id>...]  comma-separated experiment selection
  --profile              print per-experiment cycle attribution
  --bench-json <path>    write machine-readable timings
  --out-dir <dir>        directory for report files (default: TS_OUT_DIR or .)
  --no-cache             ignore the persistent result cache
  --no-active-set        disable active-set scheduling (A/B reference)
  --no-idle-skip         disable the next-event jump (A/B reference)
  --no-tile-events       disable event-driven tiles (A/B reference)

`repro <command> --help` prints each command's usage. The
pre-subcommand spellings still work: `repro [experiment ...] [flags]`
with --check-goldens / --bless / --trace <experiment>.

experiments: omit to run all; known ids are listed in ts_bench::experiments::ALL";

const SWEEP_USAGE: &str = "\
usage: repro sweep [experiment ...] [--only <id>[,<id>...]] [--tiny]
                   [--jobs <n>] [--profile] [--bench-json <path>]
                   [--no-cache] [--no-active-set] [--no-idle-skip]
                   [--no-tile-events]

Runs the named experiments (all of them when none are named) and
prints their tables. All selected experiments share one flattened
work-stealing job pool and the persistent result cache (disable with
--no-cache).";

const GOLDENS_USAGE: &str = "\
usage: repro goldens <check|bless> [experiment ...] [--only <id>[,<id>...]]
                     [--tiny] [--jobs <n>] [--profile] [--bench-json <path>]
                     [--no-cache] [--no-active-set] [--no-idle-skip]
                     [--no-tile-events]

check: re-runs the experiments and diffs them cell by cell against the
committed goldens/<scale>/ snapshots plus the shape claims; violations
land in GOLDEN_diff.txt and the exit status is 1.
bless: rewrites the snapshots after an intentional model change.";

const CACHE_USAGE: &str = "\
usage: repro cache <stats|clear>

stats: print the persistent result cache's location, entry count, and
size on disk.
clear: delete every cached result (the directory itself stays).

The cache lives in ./.ts-cache unless TS_CACHE_DIR points elsewhere.
Entries are keyed by configuration, program content, and build salt,
so a stale entry can only be read back by the build that wrote it —
clearing is about disk space, not correctness.";

const TRACE_USAGE: &str = "\
usage: repro trace <experiment> [--tiny] [--out-dir <dir>]

Runs one representative simulation of the experiment with event
tracing on and writes Chrome/Perfetto JSON to TRACE_<experiment>.json
(in --out-dir, TS_OUT_DIR, or the working directory).";

const FAULTS_USAGE: &str = "\
usage: repro faults <experiment> [--tiny] [--rate <r>] [--out-dir <dir>]

Runs the experiment's representative workload under the chaos fault
preset (fail-stops, stalls, flit loss, DRAM retries; recovery on),
validates the completed run against the reference and the untimed
oracle, and writes the summary to FAULTS_<experiment>.txt. --rate
overrides the tile fail-stop rate.";

const WHATIF_USAGE: &str = "\
usage: repro whatif [experiment ...] [--only <id>[,<id>...]] [--tiny]
                    [--speedup <type>:<pct> | --speedup task:<id>:<pct> ...]
                    [--bench-json <path>] [--out-dir <dir>]

Causal what-if profiler. Re-runs each experiment's representative
workload with tracing on, reconstructs the task dependence DAG (spawn,
pipe, and quiescence-barrier edges), and answers virtual-speedup
queries by re-weighting the critical path: the run summary, the ranked
bottleneck table (work vs. span per task type), and the query table go
to stdout and to WHATIF_<experiment>.txt. With no experiment named,
every experiment is profiled.

--speedup (repeatable) replaces the default query battery (every type
50% faster, memory/NoC 2x, spawn/host 2x, free redispatches) with
specific questions. Two spellings: <type>:<pct> speeds every task of a
type (<type> is a task-type name from the bottleneck table);
task:<id>:<pct> speeds one task *instance* (<id> is a task id from the
trace) — sharper when a single straggler dominates the span.
--bench-json splices a \"whatif\" section into an existing sweep JSON
(or writes a standalone one).";

/// What to do with goldens while running experiments.
#[derive(Clone, Copy, PartialEq)]
enum GoldenMode {
    Off,
    Check,
    Bless,
}

/// Flags shared by `sweep`, `goldens`, and the legacy spelling.
#[derive(Default)]
struct Common {
    tiny: bool,
    jobs: Option<usize>,
    show_profile: bool,
    bench_json: Option<String>,
    no_cache: bool,
    no_active_set: bool,
    no_idle_skip: bool,
    no_tile_events: bool,
    out_dir: Option<String>,
}

impl Common {
    fn scale(&self) -> Scale {
        if self.tiny {
            Scale::Tiny
        } else {
            Scale::Small
        }
    }

    /// Applies the process-wide knobs (fast-path overrides, pool size,
    /// result cache).
    fn apply(&self) {
        ts_bench::disable_fast_paths(self.no_active_set, self.no_idle_skip, self.no_tile_events);
        ts_bench::cache::set_enabled(!self.no_cache);
        if let Some(n) = self.jobs {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .expect("building the global thread pool");
        }
    }

    /// Where report files (TRACE_*, FAULTS_*, WHATIF_*, GOLDEN_diff.txt)
    /// land: `--out-dir`, else `TS_OUT_DIR`, else the working
    /// directory. Relative directories are anchored to the startup
    /// cwd; the directory is created on first use.
    fn out_path(&self, name: &str) -> PathBuf {
        let dir = self
            .out_dir
            .clone()
            .or_else(|| std::env::var("TS_OUT_DIR").ok())
            .filter(|d| !d.is_empty());
        match dir {
            Some(d) => {
                let d = absolute_from_startup(PathBuf::from(d));
                std::fs::create_dir_all(&d)
                    .unwrap_or_else(|e| panic!("creating {}: {e}", d.display()));
                d.join(name)
            }
            None => PathBuf::from(name),
        }
    }

    /// Tries to consume `arg` (and, for valued flags, the next
    /// argument) as one of the shared flags.
    fn eat(&mut self, arg: &str, it: &mut std::vec::IntoIter<String>, usage: &str) -> bool {
        match arg {
            "--tiny" => self.tiny = true,
            "--no-cache" => self.no_cache = true,
            "--no-active-set" => self.no_active_set = true,
            "--no-idle-skip" => self.no_idle_skip = true,
            "--no-tile-events" => self.no_tile_events = true,
            "--profile" => self.show_profile = true,
            "--jobs" => {
                let v = take_value(it, "--jobs", usage);
                self.jobs = Some(
                    v.parse()
                        .unwrap_or_else(|_| die("--jobs value must be an integer", usage)),
                );
            }
            "--bench-json" => self.bench_json = Some(take_value(it, "--bench-json", usage)),
            "--out-dir" => self.out_dir = Some(take_value(it, "--out-dir", usage)),
            _ => return false,
        }
        true
    }
}

fn die(msg: &str, usage: &str) -> ! {
    eprintln!("error: {msg}\n\n{usage}");
    std::process::exit(2);
}

fn take_value(it: &mut std::vec::IntoIter<String>, flag: &str, usage: &str) -> String {
    it.next()
        .unwrap_or_else(|| die(&format!("{flag} needs a value"), usage))
}

/// Tries to consume `arg` as the `--only <id>[,<id>...]` selection
/// flag, splitting the comma-separated value into `wanted`.
fn eat_only(
    arg: &str,
    it: &mut std::vec::IntoIter<String>,
    wanted: &mut Vec<String>,
    usage: &str,
) -> bool {
    if arg != "--only" {
        return false;
    }
    let v = take_value(it, "--only", usage);
    let ids: Vec<String> = v
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if ids.is_empty() {
        die("--only needs at least one experiment id", usage);
    }
    wanted.extend(ids);
    true
}

/// Expands a possibly-empty id selection to the run list, rejecting
/// unknown ids (exit 2).
fn resolve_ids(wanted: &[String], usage: &str) -> Vec<String> {
    if wanted.is_empty() {
        return ALL.iter().map(|s| s.to_string()).collect();
    }
    for id in wanted {
        if !ALL.contains(&id.as_str()) {
            die(
                &format!("unknown experiment '{id}' (known: {ALL:?})"),
                usage,
            );
        }
    }
    wanted.to_vec()
}

/// The working directory at process startup. Every relative path the
/// CLI accepts (`--out-dir`, `$TS_OUT_DIR`, `$TS_CACHE_DIR`, the
/// `goldens/` lookup) is resolved against this exactly once, so a
/// subcommand launched from a scratch cwd gets stable absolute paths
/// instead of values that would re-anchor wherever resolution happens
/// to run.
fn startup_cwd() -> &'static PathBuf {
    static CWD: OnceLock<PathBuf> = OnceLock::new();
    CWD.get_or_init(|| std::env::current_dir().expect("resolving the startup working directory"))
}

/// Anchors a possibly-relative directory to the startup cwd.
fn absolute_from_startup(dir: PathBuf) -> PathBuf {
    if dir.is_absolute() {
        dir
    } else {
        startup_cwd().join(dir)
    }
}

fn main() {
    // Canonicalize path-like inputs once, up front: the cache
    // directory is pinned process-wide, and `startup_cwd` anchors
    // every later `--out-dir`/`TS_OUT_DIR` resolution.
    ts_bench::cache::pin_relative_to(startup_cwd());
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => {
            args.remove(0);
            cmd_sweep(args);
        }
        Some("goldens") => {
            args.remove(0);
            cmd_goldens(args);
        }
        Some("cache") => {
            args.remove(0);
            cmd_cache(args);
        }
        Some("trace") => {
            args.remove(0);
            cmd_trace(args);
        }
        Some("faults") => {
            args.remove(0);
            cmd_faults(args);
        }
        Some("whatif") => {
            args.remove(0);
            cmd_whatif(args);
        }
        Some("help" | "--help" | "-h") => println!("{USAGE}"),
        _ => legacy(args),
    }
}

fn cmd_sweep(args: Vec<String>) {
    let mut common = Common::default();
    let mut wanted = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--help" || a == "-h" {
            println!("{SWEEP_USAGE}");
            return;
        }
        if common.eat(&a, &mut it, SWEEP_USAGE) || eat_only(&a, &mut it, &mut wanted, SWEEP_USAGE) {
            continue;
        }
        if a.starts_with("--") {
            die(&format!("unknown flag '{a}'"), SWEEP_USAGE);
        }
        wanted.push(a);
    }
    let ids = resolve_ids(&wanted, SWEEP_USAGE);
    common.apply();
    run_experiments(&ids, &common, GoldenMode::Off);
}

fn cmd_goldens(args: Vec<String>) {
    let mut it = args.into_iter();
    let mode = match it.next().as_deref() {
        Some("check") => GoldenMode::Check,
        Some("bless") => GoldenMode::Bless,
        Some("--help" | "-h") => {
            println!("{GOLDENS_USAGE}");
            return;
        }
        Some(other) => die(
            &format!("expected 'check' or 'bless', got '{other}'"),
            GOLDENS_USAGE,
        ),
        None => die("expected 'check' or 'bless'", GOLDENS_USAGE),
    };
    let mut common = Common::default();
    let mut wanted = Vec::new();
    while let Some(a) = it.next() {
        if a == "--help" || a == "-h" {
            println!("{GOLDENS_USAGE}");
            return;
        }
        if common.eat(&a, &mut it, GOLDENS_USAGE)
            || eat_only(&a, &mut it, &mut wanted, GOLDENS_USAGE)
        {
            continue;
        }
        if a.starts_with("--") {
            die(&format!("unknown flag '{a}'"), GOLDENS_USAGE);
        }
        wanted.push(a);
    }
    let ids = resolve_ids(&wanted, GOLDENS_USAGE);
    common.apply();
    run_experiments(&ids, &common, mode);
}

fn cmd_cache(args: Vec<String>) {
    use ts_bench::cache;
    match args.first().map(String::as_str) {
        Some("stats") => {
            let dir = cache::dir();
            match cache::disk_stats() {
                Ok((entries, bytes)) => {
                    println!("cache dir: {}", dir.display());
                    println!("entries:   {entries}");
                    println!("size:      {} KiB", bytes.div_ceil(1024));
                }
                Err(e) => die(&format!("reading {}: {e}", dir.display()), CACHE_USAGE),
            }
        }
        Some("clear") => match cache::clear() {
            Ok(removed) => println!(
                "removed {removed} cached result(s) from {}",
                cache::dir().display()
            ),
            Err(e) => die(
                &format!("clearing {}: {e}", cache::dir().display()),
                CACHE_USAGE,
            ),
        },
        Some("--help" | "-h") => println!("{CACHE_USAGE}"),
        Some(other) => die(
            &format!("expected 'stats' or 'clear', got '{other}'"),
            CACHE_USAGE,
        ),
        None => die("expected 'stats' or 'clear'", CACHE_USAGE),
    }
}

fn cmd_trace(args: Vec<String>) {
    let mut common = Common::default();
    let mut wanted = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--help" || a == "-h" {
            println!("{TRACE_USAGE}");
            return;
        }
        if a == "--tiny" {
            common.tiny = true;
            continue;
        }
        if a == "--out-dir" {
            common.out_dir = Some(take_value(&mut it, "--out-dir", TRACE_USAGE));
            continue;
        }
        if a.starts_with("--") {
            die(&format!("unknown flag '{a}'"), TRACE_USAGE);
        }
        wanted.push(a);
    }
    let [id] = wanted.as_slice() else {
        die("expected exactly one experiment id", TRACE_USAGE);
    };
    let ids = resolve_ids(std::slice::from_ref(id), TRACE_USAGE);
    run_trace(&ids[0], &common);
}

fn cmd_faults(args: Vec<String>) {
    let mut common = Common::default();
    let mut rate: Option<f64> = None;
    let mut wanted = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--help" || a == "-h" {
            println!("{FAULTS_USAGE}");
            return;
        }
        if a == "--tiny" {
            common.tiny = true;
            continue;
        }
        if a == "--out-dir" {
            common.out_dir = Some(take_value(&mut it, "--out-dir", FAULTS_USAGE));
            continue;
        }
        if a == "--rate" {
            let v = take_value(&mut it, "--rate", FAULTS_USAGE);
            rate = Some(
                v.parse()
                    .unwrap_or_else(|_| die("--rate value must be a number", FAULTS_USAGE)),
            );
            continue;
        }
        if a.starts_with("--") {
            die(&format!("unknown flag '{a}'"), FAULTS_USAGE);
        }
        wanted.push(a);
    }
    let [id] = wanted.as_slice() else {
        die("expected exactly one experiment id", FAULTS_USAGE);
    };
    let ids = resolve_ids(std::slice::from_ref(id), FAULTS_USAGE);
    run_faults(&ids[0], &common, rate);
}

fn cmd_whatif(args: Vec<String>) {
    let mut common = Common::default();
    let mut speedups: Vec<String> = Vec::new();
    let mut wanted = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--help" || a == "-h" {
            println!("{WHATIF_USAGE}");
            return;
        }
        if eat_only(&a, &mut it, &mut wanted, WHATIF_USAGE) {
            continue;
        }
        match a.as_str() {
            "--tiny" => common.tiny = true,
            "--speedup" => speedups.push(take_value(&mut it, "--speedup", WHATIF_USAGE)),
            "--out-dir" => common.out_dir = Some(take_value(&mut it, "--out-dir", WHATIF_USAGE)),
            "--bench-json" => {
                common.bench_json = Some(take_value(&mut it, "--bench-json", WHATIF_USAGE))
            }
            s if s.starts_with("--") => die(&format!("unknown flag '{s}'"), WHATIF_USAGE),
            _ => wanted.push(a),
        }
    }
    let ids = resolve_ids(&wanted, WHATIF_USAGE);
    run_whatif(&ids, &common, &speedups);
}

/// The pre-subcommand command line, kept verbatim as a hidden alias.
fn legacy(args: Vec<String>) {
    let mut common = Common::default();
    let mut check_goldens = false;
    let mut bless = false;
    let mut trace: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if common.eat(&a, &mut it, USAGE) || eat_only(&a, &mut it, &mut wanted, USAGE) {
            continue;
        }
        match a.as_str() {
            "--check-goldens" => check_goldens = true,
            "--bless" => bless = true,
            "--trace" => trace = Some(take_value(&mut it, "--trace", USAGE)),
            s if s.starts_with("--") => die(&format!("unknown flag '{s}'"), USAGE),
            _ => wanted.push(a),
        }
    }
    common.apply();
    if let Some(id) = trace {
        run_trace(&id, &common);
        return;
    }
    let ids = resolve_ids(&wanted, USAGE);
    let mode = match (check_goldens, bless) {
        (_, true) => GoldenMode::Bless,
        (true, false) => GoldenMode::Check,
        (false, false) => GoldenMode::Off,
    };
    run_experiments(&ids, &common, mode);
}

/// Runs the selected experiments as **one flattened sweep** — every
/// experiment's grid cells pooled into a single work-stealing run —
/// then assembles and prints each table and handles goldens,
/// profiles, and the bench-json output per `common`/`mode`.
fn run_experiments(ids: &[String], common: &Common, mode: GoldenMode) {
    let scale = common.scale();
    let golden_dir = goldens_root().join(experiments::scale_name(scale));
    if mode == GoldenMode::Bless {
        std::fs::create_dir_all(&golden_dir).expect("creating the goldens directory");
    }

    let t_all = Instant::now();
    // Plan first: materialize every experiment's job grid without
    // simulating, and pool all of it so a straggler cell in one
    // experiment never idles workers that could run another's cells.
    let mut plans: Vec<experiments::Plan> =
        ids.iter().map(|id| experiments::plan(id, scale)).collect();
    let mut all_jobs = Vec::new();
    let mut counts = Vec::with_capacity(plans.len());
    for p in &mut plans {
        counts.push(p.jobs.len());
        all_jobs.append(&mut p.jobs);
    }
    let t_sweep = Instant::now();
    let outcomes = ts_bench::run_jobs(&all_jobs);
    let sweep_secs = t_sweep.elapsed().as_secs_f64();

    // Per-experiment cycle attribution now comes from each outcome's
    // embedded profile (summed per plan slice) rather than global
    // snapshots around a serial loop — identical totals, but valid
    // when the experiments' simulations interleave.
    type Tallies = Vec<(String, String)>;
    let mut results: Vec<(String, usize, SimProfile, Tallies)> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut offset = 0;
    for (p, n) in plans.into_iter().zip(counts) {
        let slice = &outcomes[offset..offset + n];
        offset += n;
        let id = p.id.to_string();
        let mut prof = SimProfile::default();
        for o in slice {
            if let Some(r) = o.report() {
                prof.add(&r.profile);
            }
        }
        let doc = p.finish(slice);
        // Deterministic per-tenant tallies (admission/completion
        // counts) ride along into the bench json, where the perf gate
        // locks them down like the host cache counters.
        let tallies: Tallies = doc
            .extras
            .iter()
            .filter(|(k, _)| k.starts_with("tenant"))
            .cloned()
            .collect();
        let out = experiments::render_doc(&doc);
        println!("=== {id} ===");
        println!("{out}");
        if common.show_profile && n > 0 {
            println!("  profile: {}", profile::summarize(&prof));
        }
        println!();

        let golden_path = golden_dir.join(format!("{id}.json"));
        match mode {
            GoldenMode::Bless => {
                std::fs::write(&golden_path, doc.to_json())
                    .unwrap_or_else(|e| panic!("writing {}: {e}", golden_path.display()));
                eprintln!("blessed {}", golden_path.display());
            }
            GoldenMode::Check => {
                match std::fs::read_to_string(&golden_path) {
                    Ok(text) => match GoldenDoc::from_json(&text) {
                        Ok(golden) => violations.extend(golden.diff(&doc)),
                        Err(e) => violations.push(format!(
                            "{id} ({}): unreadable golden {}: {e}",
                            doc.scale,
                            golden_path.display()
                        )),
                    },
                    Err(_) => violations.push(format!(
                        "{id} ({}): missing golden {} (run `repro goldens bless` to create it)",
                        doc.scale,
                        golden_path.display()
                    )),
                }
                violations.extend(doc.shape_violations());
            }
            GoldenMode::Off => {}
        }
        results.push((id, n, prof, tallies));
    }
    let total = t_all.elapsed().as_secs_f64();
    if common.show_profile {
        let (tally, runs) = profile::snapshot();
        println!("=== profile (whole run, {runs} simulations) ===");
        println!("  {}\n", profile::summarize(&tally));
    }

    // Host-side counters: what the pool and the cache actually did.
    // Stderr, not stdout — steal/park counts are timing-dependent and
    // sweep stdout stays byte-for-byte reproducible.
    let pool = ts_pool::pool_stats();
    let cache_stats = ts_bench::cache::stats();
    eprintln!(
        "{} simulation job(s) in {sweep_secs:.3}s ({total:.3}s total): \
         {} steal(s), {} park(s); cache {} hit(s) / {} miss(es) / {} stored",
        all_jobs.len(),
        pool.steals,
        pool.parks,
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.stores
    );

    if let Some(path) = &common.bench_json {
        let (tally, runs) = profile::snapshot();
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            experiments::scale_name(scale)
        ));
        json.push_str(&format!("  \"jobs\": {},\n", rayon::current_num_threads()));
        json.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
        json.push_str(&format!("  \"sweep_seconds\": {sweep_secs:.3},\n"));
        json.push_str(&format!("  \"simulations\": {runs},\n"));
        json.push_str(&format!(
            "  \"host\": {{\"steals\": {}, \"parks\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"cache_stores\": {}}},\n",
            pool.steals, pool.parks, cache_stats.hits, cache_stats.misses, cache_stats.stores
        ));
        json.push_str(&format!("  \"profile\": {},\n", profile_json(&tally)));
        json.push_str("  \"experiments\": [\n");
        for (i, (id, sims, prof, tallies)) in results.iter().enumerate() {
            let comma = if i + 1 < results.len() { "," } else { "" };
            let tallies = tallies
                .iter()
                .map(|(k, v)| format!("\"{k}\": \"{v}\""))
                .collect::<Vec<_>>()
                .join(", ");
            json.push_str(&format!(
                "    {{\"id\": \"{id}\", \"sims\": {sims}, \"tallies\": {{{tallies}}}, \
                 \"profile\": {}}}{comma}\n",
                profile_json(prof)
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, json).expect("writing the bench json");
        eprintln!("wrote {path}");
    }

    if mode == GoldenMode::Check {
        let diff_path = common.out_path("GOLDEN_diff.txt");
        if violations.is_empty() {
            // A previous failing run may have left its report behind;
            // a green check must not leave a stale diff lying around.
            let _ = std::fs::remove_file(&diff_path);
            eprintln!(
                "goldens OK: {} experiment(s) match goldens/{} and satisfy the shape claims",
                results.len(),
                experiments::scale_name(scale)
            );
        } else {
            let report = format!(
                "golden check failed with {} violation(s):\n  {}\n",
                violations.len(),
                violations.join("\n  ")
            );
            eprint!("{report}");
            std::fs::write(&diff_path, &report)
                .unwrap_or_else(|e| panic!("writing {}: {e}", diff_path.display()));
            eprintln!("(report written to {})", diff_path.display());
            std::process::exit(1);
        }
    }
}

/// Runs `repro trace <id>`: one traced simulation, the Perfetto JSON
/// on disk, and the two derived text reports on stdout.
fn run_trace(id: &str, common: &Common) {
    use ts_bench::trace_report;

    let scale = common.scale();
    let t0 = Instant::now();
    let run = experiments::trace_run(id, scale);
    let records = &run.report.trace;
    println!(
        "=== trace {id} ({}, workload {}, {} cycles) ===",
        experiments::scale_name(scale),
        run.workload,
        run.report.cycles
    );
    println!(
        "  {} event(s) recorded, {} dropped to ring overflow",
        records.len(),
        run.report.trace_dropped
    );

    let path = common.out_path(&format!("TRACE_{id}.json"));
    let json = trace_report::perfetto_json(&run.workload, run.cfg.tiles, records);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!(
        "  wrote {} (load it in https://ui.perfetto.dev or chrome://tracing)\n",
        path.display()
    );

    println!("--- NoC link occupancy (stride-sampled, nonzero links) ---");
    println!(
        "{}",
        trace_report::noc_heatmap(run.cfg.mesh_dims(), records)
    );
    println!("--- memory queue depths (stride-sampled) ---");
    println!("{}", trace_report::queue_depth_table(records, 32));
    println!("  ({:.1?})", t0.elapsed());
}

/// Runs `repro faults <id>`: one chaos-preset fault-injected
/// simulation, the summary on stdout and in `FAULTS_<id>.txt`.
fn run_faults(id: &str, common: &Common, rate: Option<f64>) {
    let scale = common.scale();
    let t0 = Instant::now();
    let fr = experiments::fault_run(id, scale, rate);
    let header = format!(
        "=== faults {id} ({}, workload {}, {} cycles) ===",
        experiments::scale_name(scale),
        fr.workload,
        fr.report.cycles
    );
    println!("{header}");
    println!("{}", fr.summary);
    let path = common.out_path(&format!("FAULTS_{id}.txt"));
    std::fs::write(&path, format!("{header}\n{}", fr.summary))
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("  wrote {}", path.display());
    println!("  ({:.1?})", t0.elapsed());
}

/// Runs `repro whatif`: for each experiment, one traced simulation,
/// the DAG reconstruction, and the three tables (summary, ranked
/// bottlenecks, virtual-speedup queries) on stdout and in
/// `WHATIF_<id>.txt`. With `--bench-json`, the per-experiment summary
/// rows are spliced into the sweep JSON as a `"whatif"` section.
fn run_whatif(ids: &[String], common: &Common, speedups: &[String]) {
    use ts_bench::whatif_report as wr;

    let scale = common.scale();
    let t0 = Instant::now();
    let mut rows: Vec<String> = Vec::new();
    for id in ids {
        let run = experiments::trace_run(id, scale);
        let w = wr::analyze(&run);
        let queries: Vec<wr::LabeledQuery> = if speedups.is_empty() {
            wr::default_queries(&run.type_names)
        } else {
            speedups
                .iter()
                .map(|s| {
                    wr::parse_speedup(s, &run.type_names).unwrap_or_else(|e| die(&e, WHATIF_USAGE))
                })
                .collect()
        };
        let mut text = format!(
            "=== whatif {id} ({}, workload {}, {} cycles) ===\n",
            experiments::scale_name(scale),
            run.workload,
            run.report.cycles
        );
        text.push_str(&format!("{}\n", wr::summary_table(&w)));
        text.push_str("--- bottlenecks (ranked by critical-path share) ---\n");
        text.push_str(&format!("{}\n", wr::bottleneck_table(&w, &run.type_names)));
        text.push_str("--- virtual speedups ---\n");
        text.push_str(&format!("{}\n", wr::query_table(&w, &queries)));
        print!("{text}");
        let path = common.out_path(&format!("WHATIF_{id}.txt"));
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
        rows.push(wr::summary_json(id, &run, &w, &queries));
    }
    if let Some(path) = &common.bench_json {
        let existing = std::fs::read_to_string(path).ok();
        let merged = wr::merge_section(existing.as_deref(), &rows);
        std::fs::write(path, merged).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote whatif section to {path}");
    }
    eprintln!("  ({:.1?})", t0.elapsed());
}

/// Locates the committed `goldens/` directory: the startup working
/// directory's if present (CI runs from the repo root), else relative
/// to this crate's manifest so `cargo run -p ts-bench` works from
/// anywhere in the tree.
fn goldens_root() -> PathBuf {
    let cwd = startup_cwd().join("goldens");
    if cwd.is_dir() {
        return cwd;
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../goldens"))
}

/// Renders one profile as a JSON object (the repo has no serde; the
/// fields are flat integers and fixed-size histograms so hand-rolling
/// is exact). Histogram arrays are bucketed by stretch length; the
/// bucket boundaries are `ts_delta::STRETCH_BUCKET_LABELS`.
fn profile_json(p: &SimProfile) -> String {
    let hist = |h: &[u64]| {
        let cells: Vec<String> = h.iter().map(u64::to_string).collect();
        format!("[{}]", cells.join(", "))
    };
    format!(
        "{{\"tile_ticks\": {}, \"tile_skipped\": {}, \"tile_bulk_cycles\": {}, \
         \"tile_wakes\": {}, \"tile_next_event_calls\": {}, \
         \"mem_ticks\": {}, \"mem_skipped\": {}, \"mem_wakes\": {}, \
         \"noc_ticks\": {}, \"noc_skipped\": {}, \"noc_wakes\": {}, \
         \"jump_cycles\": {}, \"loop_cycles\": {}, \
         \"jump_hist\": {}, \"tile_stretch_hist\": {}, \
         \"mem_stretch_hist\": {}, \"noc_stretch_hist\": {}}}",
        p.tile_ticks,
        p.tile_skipped,
        p.tile_bulk_cycles,
        p.tile_wakes,
        p.tile_next_event_calls,
        p.mem_ticks,
        p.mem_skipped,
        p.mem_wakes,
        p.noc_ticks,
        p.noc_skipped,
        p.noc_wakes,
        p.jump_cycles,
        p.loop_cycles,
        hist(&p.jump_hist),
        hist(&p.tile_stretch_hist),
        hist(&p.mem_stretch_hist),
        hist(&p.noc_stretch_hist),
    )
}
