//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro                  # run everything at the default (small) scale
//! repro fig_overall      # one experiment
//! repro --tiny           # everything, test-sized instances
//! ```

use std::time::Instant;
use ts_bench::experiments::{self, ALL};
use ts_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--tiny") {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let ids: Vec<&str> = if wanted.is_empty() {
        ALL.to_vec()
    } else {
        wanted
    };

    for id in ids {
        let t0 = Instant::now();
        let out = experiments::run(id, scale);
        println!("=== {id} ===");
        println!("{out}");
        println!("  ({:.1?})\n", t0.elapsed());
    }
}
