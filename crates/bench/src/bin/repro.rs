//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro                     # run everything at the default (small) scale
//! repro fig_overall         # one experiment
//! repro --tiny              # everything, test-sized instances
//! repro --jobs 8            # run each experiment's sweep on 8 threads
//! repro --profile           # also print per-experiment cycle attribution
//! repro --bench-json out.json   # also write machine-readable timings
//! repro --no-active-set     # disable active-set scheduling (A/B reference)
//! repro --no-idle-skip      # disable the next-event jump (A/B reference)
//! repro --check-goldens     # diff results against goldens/, exit 1 on drift
//! repro --bless             # regenerate the committed goldens/ files
//! repro --trace fig_noc     # trace one run, write TRACE_fig_noc.json
//! ```
//!
//! `--jobs 1` reproduces the fully serial behavior; any `--jobs N`
//! prints byte-identical tables (per-job seeds are derived from the
//! job key, never from sweep iteration order).
//!
//! `--profile` reports, per experiment, how the simulator spent its
//! cycles: the fraction of each component's cycles that were densely
//! ticked versus replayed in closed form by active-set scheduling, and
//! the fraction of machine cycles covered by next-event jumps. The
//! same counters land in the `--bench-json` output.
//!
//! `--check-goldens` compares every experiment, cell by cell, against
//! the committed `goldens/<scale>/<id>.json` snapshot and additionally
//! asserts the machine-level shapes the paper claims rest on (see
//! `ts_bench::golden`). Violations are printed, written to
//! `GOLDEN_diff.txt`, and the process exits nonzero; a passing check
//! removes any stale `GOLDEN_diff.txt` from a previous failure. After
//! an intentional model change, `--bless` rewrites the snapshots.
//!
//! `--trace <experiment>` runs one representative simulation of the
//! experiment with event tracing enabled, writes the stream as
//! Chrome/Perfetto trace-event JSON to `TRACE_<experiment>.json`
//! (open it in <https://ui.perfetto.dev> or `chrome://tracing`), and
//! prints two derived reports: a per-link NoC occupancy heatmap and
//! the memory-queue depth timeseries. Tracing never changes results —
//! the report is bit-identical with the recorder on or off.

use std::path::PathBuf;
use std::time::Instant;
use ts_bench::experiments::{self, ALL};
use ts_bench::golden::GoldenDoc;
use ts_bench::profile;
use ts_delta::SimProfile;
use ts_workloads::Scale;

const USAGE: &str = "\
usage: repro [experiment ...] [flags]

flags:
  --tiny                 run test-sized instances (default: small)
  --jobs <n>             worker threads for each experiment's sweep
  --profile              print per-experiment cycle attribution
  --bench-json <path>    write machine-readable timings
  --no-active-set        disable active-set scheduling (A/B reference)
  --no-idle-skip         disable the next-event jump (A/B reference)
  --check-goldens        diff results against goldens/, exit 1 on drift
  --bless                regenerate the committed goldens/ files
  --trace <experiment>   trace one run, write TRACE_<experiment>.json

experiments: omit to run all; known ids are listed in ts_bench::experiments::ALL";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut jobs: Option<usize> = None;
    let mut bench_json: Option<String> = None;
    let mut show_profile = false;
    let mut no_active_set = false;
    let mut no_idle_skip = false;
    let mut check_goldens = false;
    let mut bless = false;
    let mut trace: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => scale = Scale::Tiny,
            "--no-active-set" => no_active_set = true,
            "--no-idle-skip" => no_idle_skip = true,
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                jobs = Some(v.parse().expect("--jobs value must be an integer"));
            }
            "--profile" => show_profile = true,
            "--bench-json" => {
                bench_json = Some(it.next().expect("--bench-json needs a path"));
            }
            "--check-goldens" => check_goldens = true,
            "--bless" => bless = true,
            "--trace" => {
                trace = Some(it.next().expect("--trace needs an experiment id"));
            }
            s if s.starts_with("--") => {
                eprintln!("error: unknown flag '{s}'\n\n{USAGE}");
                std::process::exit(2);
            }
            _ => wanted.push(a),
        }
    }
    ts_bench::disable_fast_paths(no_active_set, no_idle_skip);
    if let Some(n) = jobs {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("building the global thread pool");
    }
    if let Some(id) = trace {
        run_trace(&id, scale);
        return;
    }
    let ids: Vec<&str> = if wanted.is_empty() {
        ALL.to_vec()
    } else {
        wanted.iter().map(|s| s.as_str()).collect()
    };

    let golden_dir = goldens_root().join(experiments::scale_name(scale));
    if bless {
        std::fs::create_dir_all(&golden_dir).expect("creating the goldens directory");
    }

    let t_all = Instant::now();
    let mut timings: Vec<(String, f64, SimProfile)> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    for id in ids {
        let (before, _) = profile::snapshot();
        let t0 = Instant::now();
        let doc = experiments::run_doc(id, scale);
        let out = experiments::render_doc(&doc);
        let secs = t0.elapsed().as_secs_f64();
        let (after, _) = profile::snapshot();
        let prof = profile::delta(&before, &after);
        timings.push((id.to_string(), secs, prof));
        println!("=== {id} ===");
        println!("{out}");
        if show_profile {
            println!("  profile: {}", profile::summarize(&prof));
        }
        println!("  ({:.1?})\n", t0.elapsed());

        let golden_path = golden_dir.join(format!("{id}.json"));
        if bless {
            std::fs::write(&golden_path, doc.to_json())
                .unwrap_or_else(|e| panic!("writing {}: {e}", golden_path.display()));
            eprintln!("blessed {}", golden_path.display());
        }
        if check_goldens {
            match std::fs::read_to_string(&golden_path) {
                Ok(text) => match GoldenDoc::from_json(&text) {
                    Ok(golden) => violations.extend(golden.diff(&doc)),
                    Err(e) => violations.push(format!(
                        "{id} ({}): unreadable golden {}: {e}",
                        doc.scale,
                        golden_path.display()
                    )),
                },
                Err(_) => violations.push(format!(
                    "{id} ({}): missing golden {} (run `repro --bless` to create it)",
                    doc.scale,
                    golden_path.display()
                )),
            }
            violations.extend(doc.shape_violations());
        }
    }
    let total = t_all.elapsed().as_secs_f64();
    if show_profile {
        let (tally, runs) = profile::snapshot();
        println!("=== profile (whole run, {runs} simulations) ===");
        println!("  {}\n", profile::summarize(&tally));
    }

    if let Some(path) = bench_json {
        let (tally, runs) = profile::snapshot();
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            experiments::scale_name(scale)
        ));
        json.push_str(&format!("  \"jobs\": {},\n", rayon::current_num_threads()));
        json.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
        json.push_str(&format!("  \"simulations\": {runs},\n"));
        json.push_str(&format!("  \"profile\": {},\n", profile_json(&tally)));
        json.push_str("  \"experiments\": [\n");
        for (i, (id, secs, prof)) in timings.iter().enumerate() {
            let comma = if i + 1 < timings.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"id\": \"{id}\", \"seconds\": {secs:.3}, \"profile\": {}}}{comma}\n",
                profile_json(prof)
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("writing the bench json");
        eprintln!("wrote {path}");
    }

    if check_goldens {
        if violations.is_empty() {
            // A previous failing run may have left its report behind;
            // a green check must not leave a stale diff lying around.
            let _ = std::fs::remove_file("GOLDEN_diff.txt");
            eprintln!(
                "goldens OK: {} experiment(s) match goldens/{} and satisfy the shape claims",
                timings.len(),
                experiments::scale_name(scale)
            );
        } else {
            let report = format!(
                "golden check failed with {} violation(s):\n  {}\n",
                violations.len(),
                violations.join("\n  ")
            );
            eprint!("{report}");
            std::fs::write("GOLDEN_diff.txt", &report).expect("writing GOLDEN_diff.txt");
            eprintln!("(report written to GOLDEN_diff.txt)");
            std::process::exit(1);
        }
    }
}

/// Runs `repro --trace <id>`: one traced simulation, the Perfetto JSON
/// on disk, and the two derived text reports on stdout.
fn run_trace(id: &str, scale: Scale) {
    use ts_bench::trace_report;

    let t0 = Instant::now();
    let run = experiments::trace_run(id, scale);
    let records = &run.report.trace;
    println!(
        "=== trace {id} ({}, workload {}, {} cycles) ===",
        experiments::scale_name(scale),
        run.workload,
        run.report.cycles
    );
    println!(
        "  {} event(s) recorded, {} dropped to ring overflow",
        records.len(),
        run.report.trace_dropped
    );

    let path = format!("TRACE_{id}.json");
    let json = trace_report::perfetto_json(&run.workload, run.cfg.tiles, records);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("  wrote {path} (load it in https://ui.perfetto.dev or chrome://tracing)\n");

    println!("--- NoC link occupancy (stride-sampled, nonzero links) ---");
    println!(
        "{}",
        trace_report::noc_heatmap(run.cfg.mesh_dims(), records)
    );
    println!("--- memory queue depths (stride-sampled) ---");
    println!("{}", trace_report::queue_depth_table(records, 32));
    println!("  ({:.1?})", t0.elapsed());
}

/// Locates the committed `goldens/` directory: the working directory's
/// if present (CI runs from the repo root), else relative to this
/// crate's manifest so `cargo run -p ts-bench` works from anywhere in
/// the tree.
fn goldens_root() -> PathBuf {
    let cwd = PathBuf::from("goldens");
    if cwd.is_dir() {
        return cwd;
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../goldens"))
}

/// Renders one profile as a JSON object (the repo has no serde; the
/// fields are flat integers so hand-rolling is exact).
fn profile_json(p: &SimProfile) -> String {
    format!(
        "{{\"tile_ticks\": {}, \"tile_skipped\": {}, \"tile_wakes\": {}, \
         \"mem_ticks\": {}, \"mem_skipped\": {}, \"mem_wakes\": {}, \
         \"noc_ticks\": {}, \"noc_skipped\": {}, \"noc_wakes\": {}, \
         \"jump_cycles\": {}, \"loop_cycles\": {}}}",
        p.tile_ticks,
        p.tile_skipped,
        p.tile_wakes,
        p.mem_ticks,
        p.mem_skipped,
        p.mem_wakes,
        p.noc_ticks,
        p.noc_skipped,
        p.noc_wakes,
        p.jump_cycles,
        p.loop_cycles,
    )
}
