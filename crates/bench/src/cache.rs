//! Persistent content-addressed result cache for sweep simulations.
//!
//! A sweep re-runs the same (configuration × workload) simulations over
//! and over — across `--bless` / `--check-goldens` pairs, across CI
//! legs, across local iteration. Each simulation is a pure function of
//! its [`DeltaConfig`] and the [`Program`] the workload builds, so the
//! harness can memoize whole [`RunReport`]s on disk and answer repeat
//! runs in microseconds instead of seconds.
//!
//! **Key** = SHA-256 over a canonical description of everything the
//! result depends on:
//!
//! * the run mode (validated vs fault-injected) and program
//!   formulation (task-parallel vs static baseline);
//! * the workload's *content*: the `Debug` form of its task types and
//!   initial task graph plus the full initial memory image, hashed from
//!   a freshly built program. Two workloads produce the same hash iff
//!   they hand the accelerator the same program, so scale/seed/grain
//!   parameters are captured without per-workload code;
//! * the full `Debug` form of the [`DeltaConfig`] *after* the
//!   process-wide fast-path forces are applied;
//! * a code-version salt: an FNV-1a hash of the running executable's
//!   bytes, so a rebuilt simulator never reads stale entries. Tests
//!   and benchmarking override it via `TS_CACHE_SALT` when they *want*
//!   cross-binary sharing or a forced miss.
//!
//! **Value** = the full [`RunReport`] (or the wedged outcome of a
//! fault run), serialized with the same hand-rolled strings-only JSON
//! the goldens use ([`crate::golden`]) — numbers travel as decimal
//! strings, `f64`s as bit-pattern hex (exact round-trip), and the DRAM
//! image as one run-length-encoded string. Event traces are never
//! cached: a traced run bypasses the cache entirely.
//!
//! The cache is **disabled by default** and switched on by the `repro`
//! CLI (`repro sweep`, unless `--no-cache`). Entries live under
//! `$TS_CACHE_DIR` (default `./.ts-cache`), one file per key, written
//! atomically (temp file + rename) so concurrent sweeps never observe
//! a torn entry. A corrupt or unreadable entry degrades to a miss.

use crate::golden::{json_str, Json, Parser};
use crate::FaultOutcome;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use taskstream_model::{Program, Spawner, Value};
use ts_delta::{DeltaConfig, FaultReport, RunReport, SimProfile, STRETCH_BUCKETS};
use ts_workloads::Workload;

// ------------------------------------------------------------------ state

static ENABLED: AtomicBool = AtomicBool::new(false);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);

/// Explicit directory override (`repro --cache-dir` / tests); takes
/// precedence over `TS_CACHE_DIR` and the `./.ts-cache` default.
static DIR_OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Enables or disables the cache for subsequent runs in this process.
/// Off by default: library users opt in, the `repro sweep` CLI enables
/// it unless `--no-cache`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the cache is consulted by the sweep runner.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Overrides the cache directory for this process.
pub fn set_dir(path: PathBuf) {
    *DIR_OVERRIDE.lock().expect("cache dir lock poisoned") = Some(path);
}

/// Pins the cache directory to an absolute path, resolving a relative
/// `$TS_CACHE_DIR` (or the `./.ts-cache` default) against `base` once.
/// Long-lived processes call this at startup so the cache location
/// can't silently re-anchor if the working directory later changes —
/// every subsequent [`dir`] answers with the same absolute path.
pub fn pin_relative_to(base: &std::path::Path) {
    let d = dir();
    let abs = if d.is_absolute() { d } else { base.join(d) };
    set_dir(abs);
}

/// The directory entries live in: the [`set_dir`] override, else
/// `$TS_CACHE_DIR`, else `./.ts-cache`.
pub fn dir() -> PathBuf {
    if let Some(p) = DIR_OVERRIDE
        .lock()
        .expect("cache dir lock poisoned")
        .clone()
    {
        return p;
    }
    match std::env::var_os("TS_CACHE_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(".ts-cache"),
    }
}

/// In-process hit/miss/store tallies — the cache's host counters,
/// surfaced next to the pool's steal/park counts in `repro --profile`
/// and `BENCH_sweep.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Runs answered from disk.
    pub hits: u64,
    /// Runs that had to simulate (no entry, or unreadable entry).
    pub misses: u64,
    /// Fresh results persisted.
    pub stores: u64,
}

/// Snapshot of this process's cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
    }
}

/// Zeroes the in-process counters (test isolation).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    STORES.store(0, Ordering::Relaxed);
}

/// Counts entries and total bytes on disk (for `repro cache stats`).
///
/// # Errors
///
/// Returns a message if the directory exists but cannot be read. A
/// missing directory is an empty cache, not an error.
pub fn disk_stats() -> Result<(u64, u64), String> {
    let d = dir();
    let mut entries = 0u64;
    let mut bytes = 0u64;
    let rd = match fs::read_dir(&d) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, 0)),
        Err(e) => return Err(format!("cannot read {}: {e}", d.display())),
    };
    for ent in rd {
        let ent = ent.map_err(|e| format!("cannot read {}: {e}", d.display()))?;
        if ent.path().extension().is_some_and(|x| x == "json") {
            entries += 1;
            bytes += ent.metadata().map(|m| m.len()).unwrap_or(0);
        }
    }
    Ok((entries, bytes))
}

/// Deletes every cache entry (for `repro cache clear`); returns how
/// many were removed. A missing directory clears zero entries.
///
/// # Errors
///
/// Returns a message if the directory or an entry cannot be removed.
pub fn clear() -> Result<u64, String> {
    let d = dir();
    let rd = match fs::read_dir(&d) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("cannot read {}: {e}", d.display())),
    };
    let mut removed = 0u64;
    for ent in rd {
        let ent = ent.map_err(|e| format!("cannot read {}: {e}", d.display()))?;
        let p = ent.path();
        if p.extension().is_some_and(|x| x == "json") {
            fs::remove_file(&p).map_err(|e| format!("cannot remove {}: {e}", p.display()))?;
            removed += 1;
        }
    }
    Ok(removed)
}

// ------------------------------------------------------------------ keys

/// FNV-1a 64-bit — the workspace's standard cheap content hash (same
/// construction as `experiments::derive_seed` and the CGRA mapping
/// cache).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]); // separator: "ab"+"c" != "a"+"bc"
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Code-version salt: FNV-1a over the running executable's bytes, so a
/// rebuilt binary addresses a fresh slice of the cache. `TS_CACHE_SALT`
/// overrides it (tests force hits across binaries / misses within one).
fn exe_salt() -> u64 {
    static SALT: OnceLock<u64> = OnceLock::new();
    *SALT.get_or_init(|| {
        if let Ok(s) = std::env::var("TS_CACHE_SALT") {
            let mut h = Fnv::new();
            h.write_str(&s);
            return h.0;
        }
        let bytes = std::env::current_exe()
            .and_then(fs::read)
            .unwrap_or_default();
        let mut h = Fnv::new();
        h.write(&bytes);
        h.0
    })
}

/// Content hash of the program a workload hands the accelerator: name,
/// task types, full initial memory image, and the initial task graph
/// (instances + pipes). The simulation result is a pure function of
/// (config, program), so this — not the workload's parameters — is the
/// workload's cache identity; any knob that changes the program
/// (scale, seed, grain, element count) changes the hash by
/// construction, and program *code* differences are covered by the
/// executable salt.
pub(crate) fn program_fingerprint(wl: &dyn Workload, baseline: bool) -> u64 {
    let mut program: Box<dyn Program> = if baseline {
        wl.make_baseline_program()
    } else {
        wl.make_program()
    };
    let mut h = Fnv::new();
    h.write_str(wl.name());
    h.write_str(program.name());
    for tt in program.task_types() {
        h.write_str(&format!("{tt:?}"));
    }
    let image = program.memory_image();
    for (tag, segments) in [(b'd', &image.dram), (b's', &image.spad)] {
        for (base, words) in segments {
            h.write(&[tag]);
            h.write_u64(*base);
            h.write_u64(words.len() as u64);
            for w in words {
                h.write(&(*w as u64).to_le_bytes());
            }
        }
    }
    let mut spawner = Spawner::new(0);
    program.initial(&mut spawner);
    let (tasks, pipes) = spawner.take();
    h.write_u64(tasks.len() as u64);
    for t in &tasks {
        h.write_str(&format!("{t:?}"));
    }
    for p in &pipes {
        h.write_str(&format!("{p:?}"));
    }
    h.0
}

/// Computes the content-addressed key for one run. `cfg` must already
/// have the process-wide fast-path forces applied (the runner passes
/// the exact config it will simulate with).
pub fn key(wl: &dyn Workload, cfg: &DeltaConfig, baseline: bool, faulted: bool) -> String {
    key_with_salt(wl, cfg, baseline, faulted, exe_salt())
}

/// As [`key`] but with an explicit code-version salt instead of the
/// process-wide one (which is frozen at first use). Lets tests prove
/// that a salt change — a rebuilt binary — misses the old entries.
pub fn key_with_salt(
    wl: &dyn Workload,
    cfg: &DeltaConfig,
    baseline: bool,
    faulted: bool,
    salt: u64,
) -> String {
    key_from_fingerprint(
        program_fingerprint(wl, baseline),
        cfg,
        baseline,
        faulted,
        salt,
    )
}

/// The key for a run whose program fingerprint is already known — the
/// sweep runner computes each distinct workload's fingerprint once and
/// reuses it across every design point of that workload, since
/// building the program to hash it costs more than a warm hit.
pub(crate) fn key_from_fingerprint(
    fingerprint: u64,
    cfg: &DeltaConfig,
    baseline: bool,
    faulted: bool,
    salt: u64,
) -> String {
    let canon = format!(
        "format=1\nmode={}\nbaseline={}\nprogram={fingerprint:016x}\ncfg={:?}\nsalt={salt:016x}\n",
        if faulted { "faulted" } else { "validated" },
        baseline as u8,
        cfg,
    );
    sha256_hex(canon.as_bytes())
}

/// The process-wide code-version salt (see [`key`]); exposed so the
/// sweep runner can pair it with memoized fingerprints.
pub(crate) fn current_salt() -> u64 {
    exe_salt()
}

// ------------------------------------------------------------------ codec

/// Encodes a `u64` for the strings-only JSON format.
fn enc_u64(v: u64) -> Json {
    Json::Str(v.to_string())
}

/// Encodes an `f64` exactly: its IEEE-754 bit pattern in hex.
fn enc_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn dec_u64(j: &Json, what: &str) -> Result<u64, String> {
    j.as_str()
        .ok_or_else(|| format!("{what} must be a string"))?
        .parse()
        .map_err(|e| format!("{what}: {e}"))
}

fn dec_f64(s: &str, what: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("{what}: {e}"))
}

/// DRAM image as one run-length-encoded string: `len;count:value,...`.
/// Final images are dominated by long runs (untouched regions, zero
/// fills), so this keeps multi-megaword images to a few kilobytes.
fn enc_dram(report: &RunReport) -> String {
    let words = report.dram_range(0, report.dram_len());
    let mut out = format!("{};", words.len());
    let mut i = 0;
    while i < words.len() {
        let v = words[i];
        let mut j = i + 1;
        while j < words.len() && words[j] == v {
            j += 1;
        }
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", j - i, v));
        i = j;
    }
    out
}

/// Parses the RLE string into `(total words, runs)` without expanding:
/// the report materializes the image lazily, so a warm hit whose DRAM
/// is never read keeps just these few hundred bytes of runs.
fn dec_dram(s: &str) -> Result<(usize, Vec<(usize, Value)>), String> {
    let (len_s, runs_s) = s.split_once(';').ok_or("dram: missing length prefix")?;
    let len: usize = len_s.parse().map_err(|e| format!("dram length: {e}"))?;
    let mut runs = Vec::new();
    let mut total = 0usize;
    if !runs_s.is_empty() {
        for run in runs_s.split(',') {
            let (n, v) = run.split_once(':').ok_or("dram: malformed run")?;
            let n: usize = n.parse().map_err(|e| format!("dram run count: {e}"))?;
            let v: Value = v.parse().map_err(|e| format!("dram run value: {e}"))?;
            if n == 0 || total + n > len {
                return Err("dram: runs disagree with length".into());
            }
            total += n;
            runs.push((n, v));
        }
    }
    if total != len {
        return Err("dram: runs disagree with length".into());
    }
    Ok((len, runs))
}

/// `SimProfile` as a fixed-order list of decimal strings.
fn enc_profile(p: &SimProfile) -> Json {
    let mut v: Vec<u64> = vec![
        p.tile_ticks,
        p.tile_skipped,
        p.tile_bulk_cycles,
        p.tile_wakes,
        p.tile_next_event_calls,
        p.mem_ticks,
        p.mem_skipped,
        p.mem_wakes,
        p.noc_ticks,
        p.noc_skipped,
        p.noc_wakes,
        p.jump_cycles,
        p.loop_cycles,
    ];
    v.extend(p.jump_hist);
    v.extend(p.tile_stretch_hist);
    v.extend(p.mem_stretch_hist);
    v.extend(p.noc_stretch_hist);
    Json::Arr(v.into_iter().map(enc_u64).collect())
}

fn dec_profile(j: &Json) -> Result<SimProfile, String> {
    let arr = j.as_arr().ok_or("profile must be an array")?;
    let want = 13 + 4 * STRETCH_BUCKETS;
    if arr.len() != want {
        return Err(format!(
            "profile must have {want} entries, got {}",
            arr.len()
        ));
    }
    let mut it = arr.iter();
    let mut next = || dec_u64(it.next().expect("length checked"), "profile entry");
    let mut p = SimProfile {
        tile_ticks: next()?,
        tile_skipped: next()?,
        tile_bulk_cycles: next()?,
        tile_wakes: next()?,
        tile_next_event_calls: next()?,
        mem_ticks: next()?,
        mem_skipped: next()?,
        mem_wakes: next()?,
        noc_ticks: next()?,
        noc_skipped: next()?,
        noc_wakes: next()?,
        jump_cycles: next()?,
        loop_cycles: next()?,
        ..SimProfile::default()
    };
    for hist in [
        &mut p.jump_hist,
        &mut p.tile_stretch_hist,
        &mut p.mem_stretch_hist,
        &mut p.noc_stretch_hist,
    ] {
        for b in hist.iter_mut() {
            *b = next()?;
        }
    }
    Ok(p)
}

/// `FaultReport` as a fixed-order list of decimal strings.
fn enc_faults(f: &FaultReport) -> Json {
    Json::Arr(
        [
            f.tile_fail_stops,
            f.tile_stalls,
            f.noc_flits_dropped,
            f.noc_flits_corrupted,
            f.dram_retries,
            f.watchdog_fires,
            f.tasks_redispatched,
            f.pipe_replays,
            f.backoff_cycles,
            f.wasted_cycles,
        ]
        .into_iter()
        .map(enc_u64)
        .collect(),
    )
}

fn dec_faults(j: &Json) -> Result<FaultReport, String> {
    let arr = j.as_arr().ok_or("faults must be an array")?;
    if arr.len() != 10 {
        return Err(format!("faults must have 10 entries, got {}", arr.len()));
    }
    let mut it = arr.iter();
    let mut next = || dec_u64(it.next().expect("length checked"), "faults entry");
    Ok(FaultReport {
        tile_fail_stops: next()?,
        tile_stalls: next()?,
        noc_flits_dropped: next()?,
        noc_flits_corrupted: next()?,
        dram_retries: next()?,
        watchdog_fires: next()?,
        tasks_redispatched: next()?,
        pipe_replays: next()?,
        backoff_cycles: next()?,
        wasted_cycles: next()?,
    })
}

/// Serializes a run outcome to the on-disk entry format.
fn encode(outcome: &FaultOutcome) -> String {
    let report = match outcome {
        FaultOutcome::Wedged { cycles } => {
            return format!(
                "{{\"format\": \"1\", \"kind\": \"wedged\", \"cycles\": {}}}\n",
                json_str(&cycles.to_string())
            );
        }
        FaultOutcome::Completed(r) => r,
    };
    let mut s = String::from("{\n\"format\": \"1\",\n\"kind\": \"completed\",\n");
    s.push_str(&format!(
        "\"cycles\": {},\n",
        json_str(&report.cycles.to_string())
    ));
    s.push_str(&format!(
        "\"tasks_completed\": {},\n",
        json_str(&report.tasks_completed.to_string())
    ));
    s.push_str(&format!(
        "\"skipped_cycles\": {},\n",
        json_str(&report.skipped_cycles.to_string())
    ));
    let stats: Vec<String> = report
        .stats
        .iter()
        .map(|(k, v)| format!("[{}, {}]", json_str(k), json_str(&enc_f64(v))))
        .collect();
    s.push_str(&format!("\"stats\": [{}],\n", stats.join(", ")));
    let timeline: Vec<String> = report
        .timeline
        .iter()
        .map(|(c, b)| format!("{c}:{b}"))
        .collect();
    s.push_str(&format!(
        "\"timeline\": {},\n",
        json_str(&timeline.join(" "))
    ));
    s.push_str(&format!("\"dram\": {},\n", json_str(&enc_dram(report))));
    let to_text = |j: &Json| match j {
        Json::Arr(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|e| json_str(e.as_str().expect("counter lists hold strings")))
                .collect();
            format!("[{}]", parts.join(", "))
        }
        _ => unreachable!("counter lists are arrays"),
    };
    s.push_str(&format!(
        "\"profile\": {},\n",
        to_text(&enc_profile(&report.profile))
    ));
    s.push_str(&format!(
        "\"faults\": {}\n}}\n",
        to_text(&enc_faults(&report.faults))
    ));
    s
}

/// Parses an on-disk entry back into a run outcome.
fn decode(text: &str) -> Result<FaultOutcome, String> {
    let value = Parser::new(text).parse()?;
    let obj = value.as_obj().ok_or("entry must be an object")?;
    let field = |name: &str| {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{name}'"))
    };
    if field("format")?.as_str() != Some("1") {
        return Err("unknown format version".into());
    }
    let cycles = dec_u64(field("cycles")?, "cycles")?;
    match field("kind")?.as_str() {
        Some("wedged") => return Ok(FaultOutcome::Wedged { cycles }),
        Some("completed") => {}
        _ => return Err("kind must be 'completed' or 'wedged'".into()),
    }
    let mut stats = ts_sim::stats::Report::new();
    for pair in field("stats")?.as_arr().ok_or("stats must be an array")? {
        let pair = pair.as_arr().ok_or("stats entries must be pairs")?;
        match pair {
            [k, v] => {
                let k = k.as_str().ok_or("stat key must be a string")?;
                let v = v.as_str().ok_or("stat value must be a string")?;
                stats.set(k, dec_f64(v, "stat value")?);
            }
            _ => return Err("stats entries must be [key, value]".into()),
        }
    }
    let mut timeline = Vec::new();
    let tl = field("timeline")?
        .as_str()
        .ok_or("timeline must be a string")?;
    for sample in tl.split_whitespace() {
        let (c, b) = sample.split_once(':').ok_or("timeline: malformed sample")?;
        timeline.push((
            c.parse().map_err(|e| format!("timeline cycle: {e}"))?,
            b.parse().map_err(|e| format!("timeline busy: {e}"))?,
        ));
    }
    let (dram_len, dram_runs) = dec_dram(field("dram")?.as_str().ok_or("dram must be a string")?)?;
    let report = RunReport::from_cached_parts(
        cycles,
        stats,
        dram_len,
        dram_runs,
        dec_u64(field("tasks_completed")?, "tasks_completed")?,
        timeline,
        dec_u64(field("skipped_cycles")?, "skipped_cycles")?,
        dec_profile(field("profile")?)?,
        dec_faults(field("faults")?)?,
    );
    Ok(FaultOutcome::Completed(Box::new(report)))
}

// ------------------------------------------------------------------ disk

fn entry_path(key: &str) -> PathBuf {
    dir().join(format!("{key}.json"))
}

/// Looks a key up on disk. `faulted` is the run mode the caller
/// expects; an entry of the wrong kind (only possible if the cache was
/// edited by hand) degrades to a miss like any other corruption.
/// Counts one hit or one miss.
pub fn load(key: &str, faulted: bool) -> Option<FaultOutcome> {
    let loaded = fs::read_to_string(entry_path(key))
        .ok()
        .and_then(|text| decode(&text).ok())
        .filter(|out| faulted || matches!(out, FaultOutcome::Completed(_)));
    match &loaded {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    loaded
}

/// Persists one result, best-effort and atomic: a temp file in the
/// cache directory is renamed over the final name, so a concurrent
/// reader sees either the whole entry or none of it. IO failure is
/// silent (the cache is an accelerator, not a correctness surface) —
/// it just doesn't count as a store.
pub fn store(key: &str, outcome: &FaultOutcome) {
    let d = dir();
    if fs::create_dir_all(&d).is_err() {
        return;
    }
    let tmp = d.join(format!(".tmp-{}-{key}", std::process::id()));
    if fs::write(&tmp, encode(outcome)).is_err() {
        let _ = fs::remove_file(&tmp);
        return;
    }
    if fs::rename(&tmp, entry_path(key)).is_ok() {
        STORES.fetch_add(1, Ordering::Relaxed);
    } else {
        let _ = fs::remove_file(&tmp);
    }
}

// ------------------------------------------------------------------ sha256

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256, hand-rolled (the container has no crypto dependency), hex
/// output. Collision resistance is what makes "content-addressed"
/// honest: distinct configs/programs get distinct entries, period.
fn sha256_hex(data: &[u8]) -> String {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *s = s.wrapping_add(v);
        }
    }
    h.iter().map(|v| format!("{v:08x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (padding boundary).
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn dram_rle_roundtrips() {
        for words in [
            vec![],
            vec![0i64],
            vec![5, 5, 5, -2, 0, 0, 0, 0, 9],
            vec![1; 1000],
        ] {
            let mut s = format!("{};", words.len());
            let mut i = 0;
            while i < words.len() {
                let v = words[i];
                let mut j = i + 1;
                while j < words.len() && words[j] == v {
                    j += 1;
                }
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:{}", j - i, v));
                i = j;
            }
            let (len, runs) = dec_dram(&s).unwrap();
            assert_eq!(len, words.len());
            let expanded: Vec<Value> = runs
                .iter()
                .flat_map(|&(n, v)| std::iter::repeat_n(v, n))
                .collect();
            assert_eq!(expanded, words);
        }
        assert!(dec_dram("3;1:5").is_err(), "short runs must be rejected");
        assert!(dec_dram("1;2:5").is_err(), "long runs must be rejected");
    }

    #[test]
    fn f64_bits_roundtrip_exactly() {
        for v in [0.0, -0.0, 1.5, 1.0 / 3.0, f64::MAX, 1e-300] {
            let back = dec_f64(&enc_f64(v), "t").unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn wedged_entries_roundtrip() {
        let out = FaultOutcome::Wedged { cycles: 123456 };
        match decode(&encode(&out)).unwrap() {
            FaultOutcome::Wedged { cycles } => assert_eq!(cycles, 123456),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn profile_codec_roundtrips() {
        let mut p = SimProfile {
            tile_ticks: 1,
            tile_skipped: 2,
            tile_bulk_cycles: 3,
            tile_wakes: 4,
            tile_next_event_calls: 5,
            mem_ticks: 6,
            mem_skipped: 7,
            mem_wakes: 8,
            noc_ticks: 9,
            noc_skipped: 10,
            noc_wakes: 11,
            jump_cycles: 12,
            loop_cycles: 13,
            ..SimProfile::default()
        };
        p.jump_hist = [1, 2, 3, 4, 5];
        p.noc_stretch_hist = [9, 8, 7, 6, 5];
        assert_eq!(dec_profile(&enc_profile(&p)).unwrap(), p);
    }

    #[test]
    fn corrupt_entries_are_rejected() {
        assert!(decode("").is_err());
        assert!(decode("{}").is_err());
        assert!(decode("{\"format\": \"2\", \"kind\": \"wedged\", \"cycles\": \"1\"}").is_err());
        assert!(decode("{\"format\": \"1\", \"kind\": \"lost\", \"cycles\": \"1\"}").is_err());
    }
}
