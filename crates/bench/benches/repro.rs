//! `cargo bench` target that regenerates the full evaluation (every
//! table and figure) at the default scale, printing paper-style tables.
//! Uses `harness = false`: the output *is* the benchmark result.

use std::time::Instant;
use ts_bench::experiments::{self, ALL};
use ts_workloads::Scale;

fn main() {
    println!("TaskStream/Delta evaluation reproduction (scale: small, 8 tiles)");
    println!("================================================================\n");
    let total = Instant::now();
    for id in ALL {
        let t0 = Instant::now();
        let out = experiments::run(id, Scale::Small);
        println!("=== {id} ===");
        println!("{out}");
        println!("  ({:.1?})\n", t0.elapsed());
    }
    println!("total: {:.1?}", total.elapsed());
}
