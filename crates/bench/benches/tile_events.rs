//! Criterion comparison of event-driven tile scheduling against dense
//! per-cycle ticking, on the two extremes the optimization must
//! straddle: a busy gemm-like grid where every tile fires every cycle
//! (measuring the `next_event` bookkeeping overhead on runs with
//! nothing to skip) and a latency-bound spmv-like chain where running
//! heads sit input-blocked on DRAM for long stretches (measuring the
//! bulk-advance win). Results are bit-identical either way (see
//! `crates/accel/tests/tile_events.rs` for the equivalence proof).

use criterion::{criterion_group, criterion_main, Criterion};
use taskstream_model::{
    CompletedTask, MemoryImage, Program, Spawner, TaskInstance, TaskKernel, TaskType, TaskTypeId,
};
use ts_delta::{Accelerator, DeltaConfig};
use ts_dfg::DfgBuilder;
use ts_stream::StreamDesc;

fn reduce_type(name: &str) -> TaskType {
    let mut b = DfgBuilder::new(name);
    let x = b.input();
    let s = b.acc(x);
    b.output_on_last(s);
    TaskType::new(name, TaskKernel::dfg(b.finish().unwrap()))
}

/// Busy grid: waves as wide as the machine keep every tile's head
/// firing at its initiation interval — the worst case for event-driven
/// scheduling, which pays `next_event` on every ticked cycle.
struct GemmGrid {
    waves: usize,
    outstanding: usize,
}

const GRID_WIDTH: usize = 16;

impl GemmGrid {
    fn spawn_wave(&mut self, s: &mut Spawner) {
        self.waves -= 1;
        self.outstanding = GRID_WIDTH;
        for i in 0..GRID_WIDTH {
            s.spawn(
                TaskInstance::new(TaskTypeId(0))
                    .input_stream(StreamDesc::dram(0, 256))
                    .output_discard()
                    .affinity(i as u64),
            );
        }
    }
}

impl Program for GemmGrid {
    fn name(&self) -> &str {
        "gemm-grid"
    }

    fn task_types(&self) -> Vec<TaskType> {
        vec![reduce_type("tile-mm")]
    }

    fn memory_image(&self) -> MemoryImage {
        MemoryImage::new().dram_segment(0, (1..=256i64).collect::<Vec<_>>())
    }

    fn initial(&mut self, s: &mut Spawner) {
        self.spawn_wave(s);
    }

    fn on_complete(&mut self, _done: &CompletedTask, s: &mut Spawner) {
        self.outstanding -= 1;
        if self.outstanding == 0 && self.waves > 0 {
            self.spawn_wave(s);
        }
    }
}

/// Latency-bound chain: one task at a time streams a long row through
/// a slow DRAM, so the resident head spends most cycles provably
/// blocked on stream arrivals — the regime the bulk advance converts
/// from dense ticks into closed-form jumps.
struct SpmvChain {
    remaining: usize,
}

impl Program for SpmvChain {
    fn name(&self) -> &str {
        "spmv-chain"
    }

    fn task_types(&self) -> Vec<TaskType> {
        vec![reduce_type("row-dot")]
    }

    fn memory_image(&self) -> MemoryImage {
        MemoryImage::new().dram_segment(0, (1..=128i64).collect::<Vec<_>>())
    }

    fn initial(&mut self, s: &mut Spawner) {
        self.remaining -= 1;
        s.spawn(
            TaskInstance::new(TaskTypeId(0))
                .input_stream(StreamDesc::dram(0, 128))
                .output_discard(),
        );
    }

    fn on_complete(&mut self, _done: &CompletedTask, s: &mut Spawner) {
        if self.remaining > 0 {
            self.remaining -= 1;
            s.spawn(
                TaskInstance::new(TaskTypeId(0))
                    .input_stream(StreamDesc::dram(0, 128))
                    .output_discard(),
            );
        }
    }
}

fn run_gemm(tile_events: bool) -> u64 {
    let cfg = DeltaConfig::builder(GRID_WIDTH)
        .tile_events(tile_events)
        .spawn_latency(40)
        .host_latency(40)
        .build();
    let mut p = GemmGrid {
        waves: 12,
        outstanding: 0,
    };
    Accelerator::new(cfg).run(&mut p).unwrap().cycles
}

fn run_spmv(tile_events: bool) -> u64 {
    let cfg = DeltaConfig::builder(4)
        .tile_events(tile_events)
        .dram_latency(80)
        .spawn_latency(60)
        .host_latency(60)
        .build();
    let mut p = SpmvChain { remaining: 40 };
    Accelerator::new(cfg).run(&mut p).unwrap().cycles
}

fn tile_events_vs_dense(c: &mut Criterion) {
    c.bench_function("gemm_grid_tile_events", |bench| {
        bench.iter(|| run_gemm(true))
    });
    c.bench_function("gemm_grid_dense_tiles", |bench| {
        bench.iter(|| run_gemm(false))
    });
    c.bench_function("spmv_chain_tile_events", |bench| {
        bench.iter(|| run_spmv(true))
    });
    c.bench_function("spmv_chain_dense_tiles", |bench| {
        bench.iter(|| run_spmv(false))
    });
}

criterion_group!(
    name = tile_events;
    config = Criterion::default().sample_size(20);
    targets = tile_events_vs_dense
);
criterion_main!(tile_events);
