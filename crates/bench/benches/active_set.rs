//! Criterion comparison of active-set scheduling against dense ticking
//! on a partially occupied machine: waves narrower than the tile count
//! keep a few tiles busy at all times, which suppresses the
//! whole-machine `idle_skip` jump — only per-component deferral can
//! avoid ticking the idle majority. Results are bit-identical either
//! way (see `crates/accel/tests/active_set.rs` for the equivalence
//! proof).

use criterion::{criterion_group, criterion_main, Criterion};
use taskstream_model::{
    CompletedTask, MemoryImage, Program, Spawner, TaskInstance, TaskKernel, TaskType, TaskTypeId,
};
use ts_delta::{Accelerator, DeltaConfig};
use ts_dfg::DfgBuilder;
use ts_stream::StreamDesc;

/// Waves of `WIDTH` parallel tasks on a 16-tile machine; each wave
/// spawns the next on completion.
struct NarrowWaves {
    waves: usize,
    outstanding: usize,
}

const WIDTH: usize = 3;

impl NarrowWaves {
    fn spawn_wave(&mut self, s: &mut Spawner) {
        self.waves -= 1;
        self.outstanding = WIDTH;
        for i in 0..WIDTH {
            s.spawn(
                TaskInstance::new(TaskTypeId(0))
                    .input_stream(StreamDesc::dram(0, 64))
                    .output_discard()
                    .affinity(i as u64),
            );
        }
    }
}

impl Program for NarrowWaves {
    fn name(&self) -> &str {
        "narrow-waves"
    }

    fn task_types(&self) -> Vec<TaskType> {
        let mut b = DfgBuilder::new("wave");
        let x = b.input();
        let s = b.acc(x);
        b.output_on_last(s);
        vec![TaskType::new("wave", TaskKernel::dfg(b.finish().unwrap()))]
    }

    fn memory_image(&self) -> MemoryImage {
        MemoryImage::new().dram_segment(0, (1..=64i64).collect::<Vec<_>>())
    }

    fn initial(&mut self, s: &mut Spawner) {
        self.spawn_wave(s);
    }

    fn on_complete(&mut self, _done: &CompletedTask, s: &mut Spawner) {
        self.outstanding -= 1;
        if self.outstanding == 0 && self.waves > 0 {
            self.spawn_wave(s);
        }
    }
}

fn run_waves(active_set: bool) -> u64 {
    let cfg = DeltaConfig::builder(16)
        .active_set(active_set)
        .spawn_latency(60)
        .host_latency(60)
        .build();
    let mut p = NarrowWaves {
        waves: 30,
        outstanding: 0,
    };
    Accelerator::new(cfg).run(&mut p).unwrap().cycles
}

fn active_set_vs_dense(c: &mut Criterion) {
    c.bench_function("narrow_waves_active_set", |bench| {
        bench.iter(|| run_waves(true))
    });
    c.bench_function("narrow_waves_dense_tick", |bench| {
        bench.iter(|| run_waves(false))
    });
}

criterion_group!(
    name = active_set;
    config = Criterion::default().sample_size(20);
    targets = active_set_vs_dense
);
criterion_main!(active_set);
