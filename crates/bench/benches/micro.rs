//! Criterion microbenchmarks of the simulator's hot substrates: the
//! DFG interpreter, the CGRA mapper, the NoC, the DRAM model, and a
//! full tiny accelerator run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ts_cgra::{Fabric, FabricConfig};
use ts_delta::{Accelerator, DeltaConfig};
use ts_dfg::{interp, DfgBuilder};
use ts_mem::{Dram, DramConfig, JobKind};
use ts_noc::Mesh;
use ts_workloads::{spmv::Spmv, Workload};

fn dfg_interpreter(c: &mut Criterion) {
    let mut b = DfgBuilder::new("mac");
    let x = b.input();
    let y = b.input();
    let last = b.input();
    let prod = b.mul(x, y);
    let acc = b.acc_gate(prod, last);
    b.output_when(acc, last);
    let g = b.finish().unwrap();
    let xs: Vec<i64> = (0..1024).collect();
    let ys: Vec<i64> = (0..1024).rev().collect();
    let flags: Vec<i64> = (0..1024).map(|i| i64::from(i % 16 == 15)).collect();
    c.bench_function("dfg_interp_1k_mac", |bench| {
        bench.iter(|| interp::execute(&g, &[], &[xs.clone(), ys.clone(), flags.clone()]).unwrap())
    });
}

fn cgra_mapper(c: &mut Criterion) {
    let mut b = DfgBuilder::new("chain");
    let x = b.input();
    let mut cur = x;
    for i in 0..12 {
        let k = b.constant(i);
        cur = if i % 3 == 0 {
            b.mul(cur, k)
        } else {
            b.add(cur, k)
        };
    }
    b.output(cur);
    let g = b.finish().unwrap();
    let fabric = Fabric::new(FabricConfig::default());
    c.bench_function("cgra_map_12op", |bench| {
        bench.iter(|| fabric.map(black_box(&g), 7).unwrap())
    });
}

fn noc_saturation(c: &mut Criterion) {
    c.bench_function("noc_4x3_1k_flits", |bench| {
        bench.iter(|| {
            let mut mesh: Mesh<u64> = Mesh::new(4, 3, 8);
            let mut sent = 0u64;
            let mut done = 0usize;
            while done < 1000 {
                while sent < 1000 && mesh.inject(0, &[11], sent).is_ok() {
                    sent += 1;
                }
                mesh.tick();
                while mesh.eject(11).is_some() {
                    done += 1;
                }
            }
            black_box(done)
        })
    });
}

fn dram_streaming(c: &mut Criterion) {
    c.bench_function("dram_stream_4k_words", |bench| {
        bench.iter(|| {
            let mut d = Dram::new(DramConfig {
                words: 8192,
                latency: 20,
                ..DramConfig::default()
            });
            d.submit(
                JobKind::Read {
                    addrs: (0..4096).collect(),
                    gather: false,
                },
                0,
            )
            .unwrap();
            let mut now = 0;
            while !d.is_idle() {
                black_box(d.tick(now));
                now += 1;
            }
            now
        })
    });
}

fn full_run(c: &mut Criterion) {
    c.bench_function("accel_spmv_tiny", |bench| {
        let wl = Spmv::tiny(3);
        bench.iter(|| {
            let mut p = wl.make_program();
            Accelerator::new(DeltaConfig::delta(4))
                .run(p.as_mut())
                .unwrap()
                .cycles
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = dfg_interpreter, cgra_mapper, noc_saturation, dram_streaming, full_run
);
criterion_main!(micro);
