//! Criterion comparison of the idle-cycle skip fast path against dense
//! ticking on a sparse workload: a strictly serial task chain whose
//! spawn/host latency windows leave the machine quiescent most of the
//! time. Dense ticking pays for every dead cycle; the skip path jumps
//! straight to the next due event with bit-identical results (see
//! `crates/accel/tests/idle_skip.rs` for the equivalence proof).

use criterion::{criterion_group, criterion_main, Criterion};
use taskstream_model::{
    CompletedTask, MemoryImage, Program, Spawner, TaskInstance, TaskKernel, TaskType, TaskTypeId,
};
use ts_delta::{Accelerator, DeltaConfig};
use ts_dfg::DfgBuilder;
use ts_stream::StreamDesc;

struct SerialChain {
    remaining: usize,
}

impl SerialChain {
    fn spawn_link(s: &mut Spawner) {
        s.spawn(
            TaskInstance::new(TaskTypeId(0))
                .input_stream(StreamDesc::dram(0, 64))
                .output_discard(),
        );
    }
}

impl Program for SerialChain {
    fn name(&self) -> &str {
        "serial-chain"
    }

    fn task_types(&self) -> Vec<TaskType> {
        let mut b = DfgBuilder::new("link");
        let x = b.input();
        let s = b.acc(x);
        b.output_on_last(s);
        vec![TaskType::new("link", TaskKernel::dfg(b.finish().unwrap()))]
    }

    fn memory_image(&self) -> MemoryImage {
        MemoryImage::new().dram_segment(0, (1..=64i64).collect::<Vec<_>>())
    }

    fn initial(&mut self, s: &mut Spawner) {
        self.remaining -= 1;
        Self::spawn_link(s);
    }

    fn on_complete(&mut self, _done: &CompletedTask, s: &mut Spawner) {
        if self.remaining > 0 {
            self.remaining -= 1;
            Self::spawn_link(s);
        }
    }
}

fn run_chain(idle_skip: bool) -> u64 {
    let cfg = DeltaConfig::builder(4)
        .idle_skip(idle_skip)
        .spawn_latency(600)
        .host_latency(600)
        .build();
    let mut p = SerialChain { remaining: 40 };
    Accelerator::new(cfg).run(&mut p).unwrap().cycles
}

fn idle_skip_vs_dense(c: &mut Criterion) {
    c.bench_function("serial_chain_idle_skip", |bench| {
        bench.iter(|| run_chain(true))
    });
    c.bench_function("serial_chain_dense_tick", |bench| {
        bench.iter(|| run_chain(false))
    });
}

criterion_group!(
    name = idle_skip;
    config = Criterion::default().sample_size(20);
    targets = idle_skip_vs_dense
);
criterion_main!(idle_skip);
