//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of rayon's API the sweep engine uses:
//!
//! - `vec.into_par_iter().map(f).collect::<Vec<_>>()` (order-preserving)
//! - `slice.par_iter().map(f).collect::<Vec<_>>()`
//! - [`ThreadPoolBuilder::num_threads`] + `build_global`
//! - [`current_num_threads`]
//!
//! Execution model: the `ts-pool` work-stealing runtime. Every mapped
//! item becomes one stealable task in a scoped pool — Chase–Lev
//! per-worker deques, randomized victim selection, parked idle workers
//! — and writes its result into a per-index slot, so `collect` returns
//! results in input order regardless of which worker ran which job —
//! exactly the property the deterministic sweep engine relies on.
//! Stealing is what the fetch-add counter this stand-in used to wrap
//! could not do: when one job runs 10× longer than its neighbors, the
//! workers that finish early take over the straggler's queued work
//! instead of idling behind it.
//!
//! Divergence from upstream: `build_global` may be called repeatedly
//! (upstream errors on the second call). Each call *drains* — it waits
//! for in-flight parallel regions to finish, then swaps the pool width
//! — so later regions see the new width and nothing is torn down
//! mid-flight. The determinism regression tests exploit this to
//! compare `--jobs 1` and `--jobs 8` in one process.

use std::sync::Mutex;

/// Threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    ts_pool::current_threads()
}

/// Error type for [`ThreadPoolBuilder::build_global`] (never produced by
/// this stand-in, kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build global thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the implicit global pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 restores the "ask the OS" default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Reconfigures the global pool width, draining first: blocks
    /// until no parallel region is executing, then swaps. Must not be
    /// called from inside a parallel region (it would wait on itself).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        ts_pool::configure(self.num_threads);
        Ok(())
    }
}

/// Order-preserving parallel map: the engine under every adapter chain.
/// Spawns each item as one stealable `ts-pool` task.
fn run_par<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let (slots_ref, f_ref) = (&slots, &f);
    ts_pool::scope(threads, |w| {
        for (i, item) in items.into_iter().enumerate() {
            w.spawn(move |_| {
                let out = f_ref(item);
                *slots_ref[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("job produced no result")
        })
        .collect()
}

/// Parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_par(self.items, self.f).into_iter().collect()
    }
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> IntoParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Serializes tests that mutate the global thread count (the test
    /// harness runs tests concurrently).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let refs: Vec<usize> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(refs, (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn respects_global_thread_count() {
        let _guard = TEST_LOCK.lock().unwrap();
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 1);
        let out: Vec<u32> = vec![3u32, 1, 4].into_par_iter().map(|x| x * 10).collect();
        assert_eq!(out, vec![30, 10, 40]);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn parallel_path_runs_every_job_once() {
        let _guard = TEST_LOCK.lock().unwrap();
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let counter = AtomicUsize::new(0);
        let out: Vec<usize> = (0..257)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| {
                counter.fetch_add(1, Ordering::Relaxed);
                x
            })
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn repeated_build_global_drains_and_rebuilds() {
        let _guard = TEST_LOCK.lock().unwrap();
        // Flip the width back and forth around real parallel work;
        // every region must complete fully at *some* width and results
        // must stay order-preserving throughout.
        for &n in &[1usize, 8, 2, 8, 1] {
            ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .unwrap();
            assert_eq!(current_num_threads(), n);
            let out: Vec<usize> = (0..97)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x * 3)
                .collect();
            assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
        }
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }
}
