//! Fabric description and timing summary.

use crate::mapper::{self, MapError, Mapping};
use ts_dfg::Dfg;

/// Static description of one tile's CGRA.
///
/// `Eq + Hash` so a fabric can key the shared mapping cache (all fields
/// are integers; there is nothing approximate here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FabricConfig {
    /// Grid rows. Input ports enter at column 0, one per row, so `rows`
    /// bounds the number of stream inputs a kernel may have.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Every `muldiv_every`-th PE (in row-major order) carries a
    /// multiplier/divider in addition to its ALU. `1` makes the fabric
    /// homogeneous.
    pub muldiv_every: usize,
    /// Maximum graph nodes time-multiplexed onto one PE. Values above 1
    /// trade initiation interval for capacity.
    pub ops_per_pe: usize,
    /// Reconfiguration cost per PE in cycles (the configuration bitstream
    /// is streamed in; total cost is `rows * cols * config_per_pe`).
    pub config_per_pe: u64,
    /// Vector width of the datapath and ports: up to `lanes` dataflow
    /// firings retire per cycle (inputs permitting). Native kernels
    /// advance `lanes` model-cycles per machine cycle.
    pub lanes: u32,
}

impl Default for FabricConfig {
    /// A 6×5 fabric with a multiplier on every second PE — comparable to
    /// the paper family's per-tile arrays.
    fn default() -> Self {
        FabricConfig {
            rows: 6,
            cols: 5,
            muldiv_every: 2,
            ops_per_pe: 2,
            config_per_pe: 8,
            lanes: 1,
        }
    }
}

impl FabricConfig {
    /// Number of PEs in the grid.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }

    /// True if the PE at row-major index `i` has a multiplier/divider.
    pub fn pe_has_muldiv(&self, i: usize) -> bool {
        self.muldiv_every <= 1 || i.is_multiple_of(self.muldiv_every)
    }

    /// Total reconfiguration cost in cycles.
    pub fn config_cycles(&self) -> u64 {
        self.pes() as u64 * self.config_per_pe
    }
}

/// Timing summary of one mapped kernel — everything the execution model
/// needs to meter a task's fabric time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTiming {
    /// Initiation interval: a new firing starts every `ii` cycles.
    pub ii: u32,
    /// Pipeline depth: cycles from consuming the first inputs to the
    /// first output emerging.
    pub depth: u32,
    /// Cycles to reconfigure a tile to this kernel.
    pub config_cycles: u64,
}

impl KernelTiming {
    /// Fabric-busy cycles to process `n` firings from a cold pipeline
    /// (excluding reconfiguration): `depth + (n-1) * ii`, or 0 for no
    /// firings.
    pub fn cycles_for(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.depth as u64 + (n - 1) * self.ii as u64
        }
    }
}

/// A CGRA fabric that kernels can be mapped onto.
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
}

impl Fabric {
    /// Creates a fabric from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or capacity is zero.
    pub fn new(config: FabricConfig) -> Self {
        assert!(
            config.rows > 0 && config.cols > 0,
            "fabric must be non-empty"
        );
        assert!(config.ops_per_pe > 0, "ops_per_pe must be positive");
        Fabric { config }
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Places and routes `dfg` onto this fabric.
    ///
    /// Runs several seeded restarts of the greedy placer and returns the
    /// best mapping found (lowest II, then lowest depth).
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] when the graph cannot fit (too many inputs/
    /// outputs for the edge rows, or more compute nodes than PE slots).
    pub fn map(&self, dfg: &Dfg, seed: u64) -> Result<Mapping, MapError> {
        mapper::map(&self.config, dfg, seed)
    }

    /// Like [`Fabric::map`], but consults the process-wide mapping cache
    /// first. Identical inputs — across repeated accelerator
    /// constructions and across sweep threads — pay place-and-route
    /// once; see [`crate::cache`].
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] exactly as [`Fabric::map`] would.
    pub fn map_cached(&self, dfg: &Dfg, seed: u64) -> Result<Mapping, MapError> {
        crate::cache::map_cached(&self.config, dfg, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = FabricConfig::default();
        assert_eq!(c.pes(), 30);
        assert!(c.config_cycles() > 0);
    }

    #[test]
    fn muldiv_distribution() {
        let c = FabricConfig {
            muldiv_every: 2,
            ..FabricConfig::default()
        };
        let with: usize = (0..c.pes()).filter(|&i| c.pe_has_muldiv(i)).count();
        assert_eq!(with, c.pes() / 2);
        let homo = FabricConfig {
            muldiv_every: 1,
            ..FabricConfig::default()
        };
        assert!((0..homo.pes()).all(|i| homo.pe_has_muldiv(i)));
    }

    #[test]
    fn cycles_for_pipelined_throughput() {
        let t = KernelTiming {
            ii: 2,
            depth: 10,
            config_cycles: 100,
        };
        assert_eq!(t.cycles_for(0), 0);
        assert_eq!(t.cycles_for(1), 10);
        assert_eq!(t.cycles_for(11), 30);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dim_panics() {
        let _ = Fabric::new(FabricConfig {
            rows: 0,
            ..FabricConfig::default()
        });
    }
}
