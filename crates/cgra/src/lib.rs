//! CGRA fabric model: grid, place-and-route mapper, timing extraction.
//!
//! Each Delta tile contains a coarse-grained reconfigurable array — a
//! grid of processing elements (PEs) joined by a mesh of word-wide
//! links. A task type's dataflow graph is *mapped* onto the fabric
//! (placement + routing) once; every instance of that task type then
//! executes fully pipelined with the mapping's **initiation interval**
//! (II): one graph firing starts every II cycles.
//!
//! What the rest of the system consumes from this crate is a
//! [`KernelTiming`]:
//!
//! * `ii` — firings start every `ii` cycles. II > 1 arises when the
//!   mapper must time-multiplex a PE or a link between graph nodes or
//!   edges.
//! * `depth` — pipeline fill latency from first input to first output
//!   (FU stages plus routing hops on the critical path).
//! * `config_cycles` — cost of reconfiguring a tile to this kernel,
//!   proportional to fabric size. TaskStream's scheduler tries to avoid
//!   paying this by keeping task types resident.
//!
//! The mapper is a greedy topological placer with congestion-aware
//! Dijkstra routing and random restarts — the same recipe (minus
//! simulated-annealing polish) used by the paper family's spatial
//! compilers.
//!
//! # Examples
//!
//! ```
//! use ts_cgra::{Fabric, FabricConfig};
//! use ts_dfg::DfgBuilder;
//!
//! let mut b = DfgBuilder::new("axpy");
//! let x = b.input();
//! let y = b.input();
//! let a = b.param(0);
//! let ax = b.mul(a, x);
//! let r = b.add(ax, y);
//! b.output(r);
//! let dfg = b.finish().unwrap();
//!
//! let fabric = Fabric::new(FabricConfig::default());
//! let mapping = fabric.map(&dfg, 42).unwrap();
//! assert_eq!(mapping.timing().ii, 1); // tiny graph maps without sharing
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod fabric;
mod mapper;

pub use fabric::{Fabric, FabricConfig, KernelTiming};
pub use mapper::{MapError, Mapping};
