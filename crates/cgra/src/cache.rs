//! Process-wide memo of place-and-route results.
//!
//! [`mapper::map`](crate::mapper) is deterministic in
//! `(FabricConfig, Dfg, seed)`, but a design-point sweep constructs a
//! fresh accelerator — and therefore re-maps every task type's DFG —
//! for each grid point. Most grid points vary tile counts, queue depths
//! or policies while the fabric and kernels stay fixed, so the mapping
//! work is identical across hundreds of runs. This module keys mappings
//! by the *exact* structural content of the triple (no lossy hashing —
//! a collision would silently alter timing) and shares the table across
//! threads, so a parallel sweep pays each distinct place-and-route once.

use crate::fabric::FabricConfig;
use crate::mapper::{self, MapError, Mapping};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use ts_dfg::{Dfg, Op, OutputMode};

/// Exact structural identity of one mapping problem.
///
/// Node ids in a [`Dfg`] are dense construction-order indices, so
/// `(op, operand indices)` per node plus the output spec list is a
/// complete, collision-free encoding of graph structure. The graph name
/// is deliberately excluded: two identically shaped kernels share a
/// mapping even if labelled differently.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MapKey {
    fabric: FabricConfig,
    seed: u64,
    nodes: Vec<(Op, Vec<usize>)>,
    outputs: Vec<(usize, OutputMode)>,
}

impl MapKey {
    fn new(cfg: &FabricConfig, dfg: &Dfg, seed: u64) -> Self {
        MapKey {
            fabric: cfg.clone(),
            seed,
            nodes: dfg
                .node_ids()
                .map(|id| {
                    (
                        dfg.op(id),
                        dfg.operands(id).iter().map(|o| o.index()).collect(),
                    )
                })
                .collect(),
            outputs: dfg
                .outputs()
                .iter()
                .map(|spec| (spec.node.index(), spec.mode))
                .collect(),
        }
    }
}

fn table() -> &'static Mutex<HashMap<MapKey, Mapping>> {
    static TABLE: OnceLock<Mutex<HashMap<MapKey, Mapping>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Maps through the shared memo: returns the cached [`Mapping`] when
/// this exact `(config, graph structure, seed)` triple has been mapped
/// before (by any thread), otherwise maps and populates the table.
///
/// Failed mappings are not cached — [`MapError`] is cheap to recompute
/// and callers treat it as fatal anyway.
pub fn map_cached(cfg: &FabricConfig, dfg: &Dfg, seed: u64) -> Result<Mapping, MapError> {
    let key = MapKey::new(cfg, dfg, seed);
    if let Some(hit) = table().lock().expect("mapping cache poisoned").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(hit.clone());
    }
    // Map outside the lock: place-and-route is the expensive part, and
    // holding the table across it would serialize a parallel sweep's
    // cold misses. Two threads may race to map the same key; both get
    // identical results (the mapper is deterministic), so last-write
    //-wins insertion is harmless.
    let mapping = mapper::map(cfg, dfg, seed)?;
    MISSES.fetch_add(1, Ordering::Relaxed);
    table()
        .lock()
        .expect("mapping cache poisoned")
        .insert(key, mapping.clone());
    Ok(mapping)
}

/// `(hits, misses)` since process start (or the last [`reset_stats`]).
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Zeroes the hit/miss counters (the table itself is kept — entries
/// stay valid forever since mapping is a pure function of the key).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fabric;
    use ts_dfg::DfgBuilder;

    fn kernel(name: &str, muls: usize) -> Dfg {
        let mut b = DfgBuilder::new(name);
        let x = b.input();
        let y = b.input();
        let mut cur = b.add(x, y);
        for _ in 0..muls {
            cur = b.mul(cur, x);
        }
        b.output(cur);
        b.finish().unwrap()
    }

    #[test]
    fn hit_returns_same_mapping_as_cold_map() {
        let fabric = Fabric::new(FabricConfig::default());
        let dfg = kernel("k", 3);
        let cold = fabric.map(&dfg, 17).unwrap();
        let first = map_cached(fabric.config(), &dfg, 17).unwrap();
        let second = map_cached(fabric.config(), &dfg, 17).unwrap();
        for got in [&first, &second] {
            assert_eq!(got.timing(), cold.timing());
            assert_eq!(got.placement(), cold.placement());
            assert_eq!(got.total_hops(), cold.total_hops());
        }
    }

    #[test]
    fn cache_distinguishes_seed_config_and_structure() {
        let dfg = kernel("k", 2);
        let cfg = FabricConfig::default();
        // Counters are global and other tests bump them concurrently,
        // so assert on deltas, not absolutes.
        let (h0, m0) = stats();

        map_cached(&cfg, &dfg, 1).unwrap();
        map_cached(&cfg, &dfg, 2).unwrap(); // different seed: miss
        let wide = FabricConfig {
            cols: cfg.cols + 1,
            ..cfg.clone()
        };
        map_cached(&wide, &dfg, 1).unwrap(); // different fabric: miss
        map_cached(&cfg, &kernel("k", 4), 1).unwrap(); // different graph: miss
        map_cached(&cfg, &kernel("renamed", 2), 1).unwrap(); // same structure: hit

        let (h, m) = stats();
        assert!(h - h0 >= 1, "structural twin should hit");
        assert!(m - m0 >= 4, "distinct keys should miss");
    }
}
