//! Greedy place-and-route with congestion-aware routing and restarts.

use crate::fabric::{FabricConfig, KernelTiming};
use std::collections::HashMap;
use std::fmt;
use ts_dfg::{Dfg, NodeId, Op};
use ts_sim::rng::SimRng;

/// Errors from mapping a graph onto a fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// More stream inputs than west-edge port rows.
    TooManyInputs {
        /// Inputs the graph declares.
        got: usize,
        /// Port rows available.
        max: usize,
    },
    /// More output ports than east-edge port rows.
    TooManyOutputs {
        /// Outputs the graph declares.
        got: usize,
        /// Port rows available.
        max: usize,
    },
    /// More compute nodes than PE slots (`pes * ops_per_pe`).
    TooManyOps {
        /// Compute nodes in the graph.
        got: usize,
        /// Total PE slots.
        capacity: usize,
    },
    /// No functional unit of the required class has a free slot.
    NoCompatiblePe {
        /// The node that could not be placed.
        node: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::TooManyInputs { got, max } => {
                write!(f, "graph has {got} inputs but fabric has {max} input rows")
            }
            MapError::TooManyOutputs { got, max } => {
                write!(
                    f,
                    "graph has {got} outputs but fabric has {max} output rows"
                )
            }
            MapError::TooManyOps { got, capacity } => {
                write!(
                    f,
                    "graph has {got} compute nodes but fabric has {capacity} slots"
                )
            }
            MapError::NoCompatiblePe { node } => {
                write!(f, "no compatible PE slot for node n{node}")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Row-major cell index.
type Cell = usize;

/// Directed inter-PE link: `(from_cell, to_cell)`, 4-neighbour only.
type Link = (Cell, Cell);

/// A completed placement + routing of one graph on one fabric.
#[derive(Debug, Clone)]
pub struct Mapping {
    timing: KernelTiming,
    placement: HashMap<usize, Cell>,
    max_link_load: u32,
    max_pe_load: u32,
    total_hops: u64,
}

impl Mapping {
    /// The timing summary the execution model consumes.
    pub fn timing(&self) -> KernelTiming {
        self.timing
    }

    /// Cell each placed graph node landed on (keyed by node index;
    /// constants/params are absent — they are baked into PE configs).
    pub fn placement(&self) -> &HashMap<usize, Cell> {
        &self.placement
    }

    /// Heaviest time-multiplexing on any link (contributes to II).
    pub fn max_link_load(&self) -> u32 {
        self.max_link_load
    }

    /// Heaviest op count on any PE (contributes to II).
    pub fn max_pe_load(&self) -> u32 {
        self.max_pe_load
    }

    /// Total routed hops (wirelength proxy).
    pub fn total_hops(&self) -> u64 {
        self.total_hops
    }
}

struct Grid<'a> {
    cfg: &'a FabricConfig,
}

impl Grid<'_> {
    fn cell(&self, row: usize, col: usize) -> Cell {
        row * self.cfg.cols + col
    }

    fn row_col(&self, cell: Cell) -> (usize, usize) {
        (cell / self.cfg.cols, cell % self.cfg.cols)
    }

    fn neighbours(&self, cell: Cell) -> impl Iterator<Item = Cell> + '_ {
        let (r, c) = self.row_col(cell);
        let mut out = Vec::with_capacity(4);
        if c + 1 < self.cfg.cols {
            out.push(self.cell(r, c + 1));
        }
        if c > 0 {
            out.push(self.cell(r, c - 1));
        }
        if r + 1 < self.cfg.rows {
            out.push(self.cell(r + 1, c));
        }
        if r > 0 {
            out.push(self.cell(r - 1, c));
        }
        out.into_iter()
    }

    fn manhattan(&self, a: Cell, b: Cell) -> usize {
        let (ar, ac) = self.row_col(a);
        let (br, bc) = self.row_col(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }
}

/// Maps `dfg` onto the fabric described by `cfg`, best of several
/// seeded restarts.
pub fn map(cfg: &FabricConfig, dfg: &Dfg, seed: u64) -> Result<Mapping, MapError> {
    if dfg.input_count() > cfg.rows {
        return Err(MapError::TooManyInputs {
            got: dfg.input_count(),
            max: cfg.rows,
        });
    }
    if dfg.output_count() > cfg.rows {
        return Err(MapError::TooManyOutputs {
            got: dfg.output_count(),
            max: cfg.rows,
        });
    }
    let compute: Vec<NodeId> = dfg.compute_nodes().collect();
    let capacity = cfg.pes() * cfg.ops_per_pe;
    if compute.len() > capacity {
        return Err(MapError::TooManyOps {
            got: compute.len(),
            capacity,
        });
    }

    const RESTARTS: u64 = 4;
    let mut best: Option<Mapping> = None;
    let mut last_err = None;
    for r in 0..RESTARTS {
        match attempt(cfg, dfg, &compute, seed.wrapping_add(r * 0x9E37)) {
            Ok(m) => {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (m.timing.ii, m.timing.depth, m.total_hops)
                            < (b.timing.ii, b.timing.depth, b.total_hops)
                    }
                };
                if better {
                    best = Some(m);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.ok_or_else(|| last_err.expect("either a mapping or an error exists"))
}

fn attempt(
    cfg: &FabricConfig,
    dfg: &Dfg,
    compute: &[NodeId],
    seed: u64,
) -> Result<Mapping, MapError> {
    let grid = Grid { cfg };
    let mut rng = SimRng::seed(seed);
    let n_cells = cfg.pes();

    // --- placement -------------------------------------------------
    // input port taps live at column 0, one per row, in port order
    let mut place: HashMap<usize, Cell> = HashMap::new();
    for id in dfg.node_ids() {
        if let Op::Input(port) = dfg.op(id) {
            place.insert(id.index(), grid.cell(port, 0));
        }
    }

    let mut pe_load = vec![0u32; n_cells];
    let is_compute: Vec<bool> = {
        let mut v = vec![false; dfg.node_count()];
        for c in compute {
            v[c.index()] = true;
        }
        v
    };

    for &node in compute {
        let needs_muldiv = dfg.op(node).fu_class() == ts_dfg::Op::Mul.fu_class()
            && matches!(dfg.op(node), Op::Mul | Op::Div | Op::Rem);
        let mut cand: Vec<Cell> = (0..n_cells)
            .filter(|&cell| {
                pe_load[cell] < cfg.ops_per_pe as u32 && (!needs_muldiv || cfg.pe_has_muldiv(cell))
            })
            .collect();
        if cand.is_empty() {
            return Err(MapError::NoCompatiblePe { node: node.index() });
        }
        rng.shuffle(&mut cand);
        let best_cell = cand
            .into_iter()
            .min_by_key(|&cell| {
                let wire: usize = dfg
                    .operands(node)
                    .iter()
                    .filter_map(|o| place.get(&o.index()))
                    .map(|&p| grid.manhattan(p, cell))
                    .sum();
                wire + 2 * pe_load[cell] as usize
            })
            .expect("candidates non-empty");
        pe_load[best_cell] += 1;
        place.insert(node.index(), best_cell);
    }

    // --- routing ----------------------------------------------------
    let mut link_load: HashMap<Link, u32> = HashMap::new();
    let mut edge_hops: HashMap<(usize, usize, usize), u32> = HashMap::new();

    let route = |from: Cell, to: Cell, link_load: &mut HashMap<Link, u32>| -> u32 {
        if from == to {
            return 0;
        }
        // Dijkstra with congestion-aware cost
        let mut dist = vec![u64::MAX; n_cells];
        let mut prev: Vec<Option<Cell>> = vec![None; n_cells];
        let mut heap = std::collections::BinaryHeap::new();
        dist[from] = 0;
        heap.push(std::cmp::Reverse((0u64, from)));
        while let Some(std::cmp::Reverse((d, cell))) = heap.pop() {
            if d > dist[cell] {
                continue;
            }
            if cell == to {
                break;
            }
            for nb in grid.neighbours(cell) {
                let cong = *link_load.get(&(cell, nb)).unwrap_or(&0) as u64;
                let nd = d + 1 + 4 * cong;
                if nd < dist[nb] {
                    dist[nb] = nd;
                    prev[nb] = Some(cell);
                    heap.push(std::cmp::Reverse((nd, nb)));
                }
            }
        }
        // walk back, bumping link usage
        let mut hops = 0;
        let mut cur = to;
        while let Some(p) = prev[cur] {
            *link_load.entry((p, cur)).or_insert(0) += 1;
            hops += 1;
            cur = p;
            if cur == from {
                break;
            }
        }
        hops
    };

    let mut total_hops = 0u64;
    for edge in dfg.edges() {
        let from_op = dfg.op(edge.from);
        if from_op.is_free() {
            continue; // constants/params are baked into the consumer PE
        }
        let (Some(&fc), Some(&tc)) = (place.get(&edge.from.index()), place.get(&edge.to.index()))
        else {
            continue; // edge into an output spec handled below
        };
        let hops = route(fc, tc, &mut link_load);
        total_hops += hops as u64;
        edge_hops.insert((edge.from.index(), edge.to.index(), edge.operand), hops);
    }

    // output ports exit at column cols-1, one row per port
    let mut out_hops: Vec<u32> = Vec::with_capacity(dfg.output_count());
    for (port, spec) in dfg.outputs().iter().enumerate() {
        let egress = grid.cell(port, cfg.cols - 1);
        let src = place.get(&spec.node.index()).copied().unwrap_or(egress); // const outputs need no route
        let hops = route(src, egress, &mut link_load);
        total_hops += hops as u64;
        out_hops.push(hops);
    }

    // --- timing -----------------------------------------------------
    let max_pe_load = pe_load.iter().copied().max().unwrap_or(0).max(1);
    let max_link_load = link_load.values().copied().max().unwrap_or(0).max(1);
    let ii = max_pe_load.max(max_link_load);

    // critical path: FU latency 1 per compute node + routed hops per edge
    let mut level = vec![0u64; dfg.node_count()];
    for id in dfg.node_ids() {
        let mut base = 0u64;
        for (slot, o) in dfg.operands(id).iter().enumerate() {
            let hop = *edge_hops.get(&(o.index(), id.index(), slot)).unwrap_or(&0) as u64;
            base = base.max(level[o.index()] + hop);
        }
        let fu = u64::from(is_compute[id.index()]);
        level[id.index()] = base + fu;
    }
    let mut depth = 1u64; // minimum: the output register stage
    for (port, spec) in dfg.outputs().iter().enumerate() {
        depth = depth.max(level[spec.node.index()] + out_hops[port] as u64 + 1);
    }

    Ok(Mapping {
        timing: KernelTiming {
            ii,
            depth: depth.min(u32::MAX as u64) as u32,
            config_cycles: cfg.config_cycles(),
        },
        placement: place,
        max_link_load,
        max_pe_load,
        total_hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use ts_dfg::DfgBuilder;

    fn small_fabric() -> Fabric {
        Fabric::new(FabricConfig::default())
    }

    fn chain_graph(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let x = b.input();
        let mut cur = x;
        for i in 0..len {
            let c = b.constant(i as i64);
            cur = b.add(cur, c);
        }
        b.output(cur);
        b.finish().unwrap()
    }

    #[test]
    fn small_graph_maps_at_ii_1() {
        let m = small_fabric().map(&chain_graph(4), 1).unwrap();
        assert_eq!(m.timing().ii, 1);
        assert!(m.timing().depth >= 5); // 4 FUs + output stage
    }

    #[test]
    fn every_compute_node_is_placed() {
        let g = chain_graph(8);
        let m = small_fabric().map(&g, 2).unwrap();
        for node in g.compute_nodes() {
            assert!(
                m.placement().contains_key(&node.index()),
                "node {node} unplaced"
            );
        }
    }

    #[test]
    fn pe_sharing_raises_ii() {
        // more compute nodes than PEs on a tiny fabric forces sharing
        let f = Fabric::new(FabricConfig {
            rows: 2,
            cols: 2,
            muldiv_every: 1,
            ops_per_pe: 4,
            config_per_pe: 1,
            lanes: 1,
        });
        let m = f.map(&chain_graph(9), 3).unwrap();
        assert!(m.timing().ii >= 3, "ii = {}", m.timing().ii);
    }

    #[test]
    fn capacity_errors() {
        let f = Fabric::new(FabricConfig {
            rows: 2,
            cols: 2,
            muldiv_every: 1,
            ops_per_pe: 1,
            config_per_pe: 1,
            lanes: 1,
        });
        assert!(matches!(
            f.map(&chain_graph(10), 0),
            Err(MapError::TooManyOps { .. })
        ));

        let mut b = DfgBuilder::new("wide");
        let a = b.input();
        let c = b.input();
        let d = b.input();
        let s1 = b.add(a, c);
        let s2 = b.add(s1, d);
        b.output(s2);
        let g = b.finish().unwrap();
        assert!(matches!(
            f.map(&g, 0),
            Err(MapError::TooManyInputs { got: 3, max: 2 })
        ));
    }

    #[test]
    fn muldiv_nodes_land_on_muldiv_pes() {
        let cfg = FabricConfig {
            rows: 4,
            cols: 4,
            muldiv_every: 4,
            ops_per_pe: 2,
            config_per_pe: 1,
            lanes: 1,
        };
        let f = Fabric::new(cfg.clone());
        let mut b = DfgBuilder::new("muls");
        let x = b.input();
        let y = b.input();
        let m1 = b.mul(x, y);
        let m2 = b.mul(m1, y);
        b.output(m2);
        let g = b.finish().unwrap();
        let m = f.map(&g, 7).unwrap();
        for node in g.node_ids() {
            if matches!(g.op(node), ts_dfg::Op::Mul) {
                let cell = m.placement()[&node.index()];
                assert!(cfg.pe_has_muldiv(cell), "mul on non-muldiv PE {cell}");
            }
        }
    }

    #[test]
    fn mapping_is_deterministic_for_a_seed() {
        let g = chain_graph(6);
        let f = small_fabric();
        let a = f.map(&g, 11).unwrap();
        let b = f.map(&g, 11).unwrap();
        assert_eq!(a.timing(), b.timing());
        assert_eq!(a.total_hops(), b.total_hops());
    }

    #[test]
    fn deeper_graphs_have_deeper_pipelines() {
        let f = small_fabric();
        let d1 = f.map(&chain_graph(2), 5).unwrap().timing().depth;
        let d2 = f.map(&chain_graph(10), 5).unwrap().timing().depth;
        assert!(d2 > d1, "{d2} should exceed {d1}");
    }
}
