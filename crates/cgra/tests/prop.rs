//! Property tests for the place-and-route mapper.

use proptest::prelude::*;
use ts_cgra::{Fabric, FabricConfig};
use ts_dfg::{Dfg, DfgBuilder, NodeId, Op};
use ts_sim::rng::SimRng;

/// Builds a random layered DAG with `ops` compute nodes over two
/// inputs, always ending in one output.
fn random_dfg(ops: usize, seed: u64) -> Dfg {
    let mut rng = SimRng::seed(seed);
    let mut b = DfgBuilder::new("prop");
    let mut pool: Vec<NodeId> = vec![b.input(), b.input()];
    for i in 0..ops {
        let a = pool[rng.index(pool.len())];
        let c = pool[rng.index(pool.len())];
        let op = match i % 5 {
            0 => Op::Mul,
            1 => Op::Add,
            2 => Op::Min,
            3 => Op::Xor,
            _ => Op::Sub,
        };
        let n = b.node(op, &[a, c]);
        pool.push(n);
    }
    let out = *pool.last().expect("nonempty");
    b.output(out);
    b.finish().expect("random DAG is structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every mappable graph gets a complete placement with II within
    /// the resource bounds.
    #[test]
    fn mapping_invariants(ops in 1usize..28, seed in 0u64..1000) {
        let cfg = FabricConfig::default();
        let fabric = Fabric::new(cfg.clone());
        let dfg = random_dfg(ops, seed);
        let mapping = fabric.map(&dfg, seed).expect("graph fits the fabric");

        // every compute node is placed, on a capable PE
        for node in dfg.compute_nodes() {
            let cell = *mapping
                .placement()
                .get(&node.index())
                .unwrap_or_else(|| panic!("{node} unplaced"));
            prop_assert!(cell < cfg.pes());
            if matches!(dfg.op(node), Op::Mul | Op::Div | Op::Rem) {
                prop_assert!(cfg.pe_has_muldiv(cell), "mul on plain ALU at {cell}");
            }
        }

        let t = mapping.timing();
        // II bounds: at least the PE-sharing lower bound, at most the
        // configured multiplex capacity (links can add on top, but the
        // mapper's restarts keep II equal to the worst resource load)
        let lower = dfg.compute_nodes().count().div_ceil(cfg.pes()) as u32;
        prop_assert!(t.ii >= lower.max(1));
        prop_assert_eq!(
            t.ii,
            mapping.max_pe_load().max(mapping.max_link_load())
        );
        // depth at least the combinational depth
        prop_assert!(t.depth as usize >= dfg.depth());
        prop_assert_eq!(t.config_cycles, cfg.config_cycles());
    }

    /// Mapping is deterministic in (graph, seed).
    #[test]
    fn mapping_is_deterministic(ops in 1usize..20, seed in 0u64..200) {
        let fabric = Fabric::new(FabricConfig::default());
        let dfg = random_dfg(ops, seed);
        let a = fabric.map(&dfg, seed).unwrap();
        let b = fabric.map(&dfg, seed).unwrap();
        prop_assert_eq!(a.timing(), b.timing());
        prop_assert_eq!(a.placement(), b.placement());
    }
}
