//! Property tests for stream descriptors.

use proptest::prelude::*;
use ts_stream::{Affine, DataSrc, StreamDesc};

fn affine_strategy() -> impl Strategy<Value = Affine> {
    (0u64..10_000, -16i64..17, 1u64..20, -64i64..65, 1u64..8).prop_filter_map(
        "must stay non-negative",
        |(base, s0, l0, s1, l1)| {
            let worst = (l0 as i64 - 1) * s0.min(0) + (l1 as i64 - 1) * s1.min(0);
            if base as i64 + worst < 0 {
                None
            } else {
                Some(Affine::dims2(base, s1, l1, s0, l0))
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `addr_of(i)` agrees with the iterator, for every element.
    #[test]
    fn addr_of_matches_iter(a in affine_strategy()) {
        let addrs: Vec<u64> = a.iter().collect();
        prop_assert_eq!(addrs.len() as u64, a.len());
        for (i, &addr) in addrs.iter().enumerate() {
            prop_assert_eq!(a.addr_of(i as u64), addr);
        }
    }

    /// Every generated address lies inside the reported span, and the
    /// span's extremes are actually touched.
    #[test]
    fn span_is_tight(a in affine_strategy()) {
        let (lo, hi) = a.span().expect("non-empty");
        let addrs: Vec<u64> = a.iter().collect();
        for &addr in &addrs {
            prop_assert!((lo..hi).contains(&addr), "{addr} outside {lo}..{hi}");
        }
        prop_assert_eq!(*addrs.iter().min().unwrap(), lo);
        prop_assert_eq!(*addrs.iter().max().unwrap(), hi - 1);
    }

    /// Traffic accounting is consistent with length and placement.
    #[test]
    fn traffic_matches_len(a in affine_strategy(), in_dram in prop::bool::ANY) {
        let src = if in_dram { DataSrc::Dram } else { DataSrc::Spad };
        let d = StreamDesc::affine(src, a);
        prop_assert_eq!(d.dram_words() + d.spad_words(), d.len());
        let ind = StreamDesc::Indirect {
            src,
            base: 0,
            scale: 1,
            index: a,
            index_src: DataSrc::Dram,
        };
        // indirect: index fetch + data fetch
        prop_assert_eq!(ind.dram_words() + ind.spad_words(), 2 * ind.len());
    }
}
