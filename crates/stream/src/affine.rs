//! Affine (up to 3-deep loop nest) address patterns.

use crate::Addr;

/// An affine address pattern: a loop nest of up to three levels.
///
/// Addresses are generated as
/// `base + i2*stride2 + i1*stride1 + i0*stride0` with `i0` innermost,
/// `i0 < len0`, `i1 < len1`, `i2 < len2`. A 1-D pattern sets the outer
/// lengths to 1.
///
/// Strides are signed (descending patterns are legal); generated
/// addresses must stay non-negative, which [`Affine::new`] validates.
///
/// # Examples
///
/// ```
/// use ts_stream::Affine;
///
/// let a = Affine::dims1(100, 3, 4); // 100, 103, 106, 109
/// let addrs: Vec<u64> = a.iter().collect();
/// assert_eq!(addrs, vec![100, 103, 106, 109]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Affine {
    base: Addr,
    stride: [i64; 3],
    len: [u64; 3],
}

impl Affine {
    /// Creates a general 3-level pattern.
    ///
    /// `stride[0]`/`len[0]` are the innermost loop. Lengths of zero are
    /// allowed and produce an empty stream.
    ///
    /// # Panics
    ///
    /// Panics if any generated address would be negative or overflow.
    pub fn new(base: Addr, stride: [i64; 3], len: [u64; 3]) -> Self {
        let a = Affine { base, stride, len };
        // validate extreme corners: min/max offset across the nest
        let mut min_off: i128 = 0;
        let mut max_off: i128 = 0;
        for d in 0..3 {
            if len[d] == 0 {
                // empty stream generates nothing; still fine
                continue;
            }
            let span = (len[d] as i128 - 1) * stride[d] as i128;
            if span < 0 {
                min_off += span;
            } else {
                max_off += span;
            }
        }
        let lo = base as i128 + min_off;
        let hi = base as i128 + max_off;
        assert!(lo >= 0, "affine pattern generates negative address {lo}");
        assert!(
            hi <= u64::MAX as i128,
            "affine pattern overflows address space"
        );
        a
    }

    /// 1-D pattern: `len` addresses starting at `base` with `stride`.
    pub fn dims1(base: Addr, stride: i64, len: u64) -> Self {
        Self::new(base, [stride, 0, 0], [len, 1, 1])
    }

    /// Contiguous 1-D pattern (`stride == 1`).
    pub fn contiguous(base: Addr, len: u64) -> Self {
        Self::dims1(base, 1, len)
    }

    /// 2-D pattern: `outer_len` rows of `inner_len` elements.
    pub fn dims2(
        base: Addr,
        outer_stride: i64,
        outer_len: u64,
        inner_stride: i64,
        inner_len: u64,
    ) -> Self {
        Self::new(
            base,
            [inner_stride, outer_stride, 0],
            [inner_len, outer_len, 1],
        )
    }

    /// Total number of addresses generated.
    pub fn len(&self) -> u64 {
        self.len[0]
            .saturating_mul(self.len[1])
            .saturating_mul(self.len[2])
    }

    /// True if the pattern generates no addresses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base address of the pattern.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The address of element `i` in generation order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn addr_of(&self, i: u64) -> Addr {
        assert!(i < self.len(), "index {i} out of range");
        let i0 = i % self.len[0];
        let rest = i / self.len[0];
        let i1 = rest % self.len[1];
        let i2 = rest / self.len[1];
        let off = i0 as i128 * self.stride[0] as i128
            + i1 as i128 * self.stride[1] as i128
            + i2 as i128 * self.stride[2] as i128;
        (self.base as i128 + off) as Addr
    }

    /// Iterates over the generated addresses.
    pub fn iter(&self) -> AffineIter {
        AffineIter {
            pattern: *self,
            next: 0,
            total: self.len(),
        }
    }

    /// The inclusive-exclusive address span `(lowest, highest+1)` the
    /// pattern touches, used for region overlap queries.
    ///
    /// Returns `None` for empty patterns.
    pub fn span(&self) -> Option<(Addr, Addr)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.base as i128;
        let mut hi = self.base as i128;
        for d in 0..3 {
            let s = (self.len[d] as i128 - 1) * self.stride[d] as i128;
            if s < 0 {
                lo += s;
            } else {
                hi += s;
            }
        }
        Some((lo as Addr, hi as Addr + 1))
    }
}

/// Iterator over the addresses of an [`Affine`] pattern.
#[derive(Debug, Clone)]
pub struct AffineIter {
    pattern: Affine,
    next: u64,
    total: u64,
}

impl Iterator for AffineIter {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        if self.next >= self.total {
            return None;
        }
        let a = self.pattern.addr_of(self.next);
        self.next += 1;
        Some(a)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for AffineIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_addresses() {
        let a = Affine::contiguous(5, 4);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn strided_and_descending() {
        let a = Affine::dims1(10, -2, 3);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![10, 8, 6]);
    }

    #[test]
    fn two_dimensional_row_major() {
        let a = Affine::dims2(0, 10, 2, 1, 3);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn empty_pattern() {
        let a = Affine::dims1(0, 1, 0);
        assert!(a.is_empty());
        assert_eq!(a.iter().count(), 0);
        assert_eq!(a.span(), None);
    }

    #[test]
    fn span_covers_extremes() {
        let a = Affine::dims1(10, -2, 3); // touches 6..=10
        assert_eq!(a.span(), Some((6, 11)));
        let b = Affine::dims2(100, 8, 4, 1, 8); // 100..=131
        assert_eq!(b.span(), Some((100, 132)));
    }

    #[test]
    #[should_panic(expected = "negative address")]
    fn negative_address_rejected() {
        let _ = Affine::dims1(1, -1, 5);
    }

    #[test]
    fn addr_of_matches_iter() {
        let a = Affine::new(7, [1, 100, 10_000], [3, 2, 2]);
        let from_iter: Vec<_> = a.iter().collect();
        let from_index: Vec<_> = (0..a.len()).map(|i| a.addr_of(i)).collect();
        assert_eq!(from_iter, from_index);
        assert_eq!(from_iter.len(), 12);
    }

    #[test]
    fn exact_size_hint() {
        let mut it = Affine::contiguous(0, 10).iter();
        assert_eq!(it.len(), 10);
        it.next();
        assert_eq!(it.len(), 9);
    }
}
