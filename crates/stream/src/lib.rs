//! Stream descriptors for the TaskStream/Delta reproduction.
//!
//! Streams are how the paper family's accelerators express *all* data
//! movement: a stream descriptor names a (possibly multi-dimensional or
//! indirect) sequence of memory words, and dedicated stream engines move
//! that sequence between memory and the fabric's ports without any
//! per-element instructions.
//!
//! In TaskStream the descriptors do double duty: they are also the
//! *dependence annotations*. A consumer task whose input stream is the
//! producer's output stream (see `taskstream-model`) recovers a pipelined
//! inter-task dependence; two tasks whose input descriptors cover the same
//! region recover read sharing, which the hardware serves with one
//! multicast.
//!
//! This crate is pure description + address arithmetic; the engines that
//! execute descriptors against memory/NoC live in `ts-delta`.
//!
//! # Examples
//!
//! ```
//! use ts_stream::{Affine, DataSrc, StreamDesc};
//!
//! // Rows 0..4 of an 8-wide matrix in DRAM, one row per "inner" loop.
//! let pat = Affine::dims2(0x1000, 8, 4, 1, 8);
//! assert_eq!(pat.len(), 32);
//! let desc = StreamDesc::affine(DataSrc::Dram, pat);
//! assert_eq!(desc.len(), 32);
//! assert_eq!(desc.dram_words(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod desc;

pub use affine::{Affine, AffineIter};
pub use desc::{DataSrc, StreamDesc};

/// Word address within a memory space (DRAM or a tile scratchpad).
///
/// The machine is word-addressed: one address names one 64-bit value.
pub type Addr = u64;

/// Scalar element type carried by streams (same domain as `ts_dfg::Value`).
pub type Value = i64;
