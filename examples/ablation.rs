//! Mechanism ablation on one workload: toggle TaskStream's three
//! mechanisms one at a time and watch where the cycles go.
//!
//! ```text
//! cargo run --release --example ablation [spmv|hash_join|dtree|merge_sort]
//! ```

use taskstream::delta::{Accelerator, DeltaConfig, Features};
use taskstream::model::Policy;
use taskstream::workloads::{
    dtree::DTree, hash_join::HashJoin, merge_sort::MergeSort, spmv::Spmv, Workload,
};

fn run(wl: &dyn Workload, label: &str, cfg: DeltaConfig) -> u64 {
    let mut p = wl.make_program();
    let r = Accelerator::new(cfg).run(p.as_mut()).expect("run");
    wl.validate(&r).expect("results");
    println!(
        "  {label:<22} {:>9} cycles  (imb {:.2}, dram {:>8.0} words, direct pipes {:.0})",
        r.cycles,
        r.load_imbalance(),
        r.dram_words(),
        r.stats.sum_matching("pipes_direct"),
    );
    r.cycles
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "spmv".into());
    let wl: Box<dyn Workload> = match which.as_str() {
        "spmv" => Box::new(Spmv::small(42)),
        "hash_join" => Box::new(HashJoin::small(42)),
        "dtree" => Box::new(DTree::small(42)),
        "merge_sort" => Box::new(MergeSort::small(42)),
        other => panic!("unknown workload '{other}'"),
    };
    println!("ablation: {} on 8 tiles\n", wl.name());

    let base = run(
        wl.as_ref(),
        "static placement",
        DeltaConfig::static_parallel(8).with_policy(Policy::StaticHash),
    );
    let lb = run(
        wl.as_ref(),
        "+work-aware balance",
        DeltaConfig::static_parallel(8).with_features(Features {
            work_aware: true,
            pipelining: false,
            multicast: false,
        }),
    );
    let pipe = run(
        wl.as_ref(),
        "+pipelined handoff",
        DeltaConfig::static_parallel(8).with_features(Features {
            work_aware: true,
            pipelining: true,
            multicast: false,
        }),
    );
    let full = run(wl.as_ref(), "+multicast (= Delta)", DeltaConfig::delta(8));

    println!("\ncumulative speedup over static placement:");
    for (label, c) in [("+balance", lb), ("+pipeline", pipe), ("+multicast", full)] {
        println!("  {label:<12} {:.2}x", base as f64 / c as f64);
    }
}
