//! Build a custom accelerator program from scratch against the public
//! API: define a dataflow kernel, bind streams, chain two tasks through
//! a pipe, and read the results back — the "hello world" of writing new
//! TaskStream workloads.
//!
//! The program computes, for a vector `v` in DRAM:
//!   stage 1 (filter):  keep `v[i]` where `v[i] > threshold`
//!   stage 2 (reduce):  sum the kept elements
//! with the two stages co-scheduled and streaming through a pipe.
//!
//! ```text
//! cargo run --release --example custom_accelerator
//! ```

use taskstream::delta::{Accelerator, DeltaConfig};
use taskstream::dfg::DfgBuilder;
use taskstream::mem::WriteMode;
use taskstream::model::{
    CompletedTask, MemoryImage, Program, Spawner, TaskInstance, TaskKernel, TaskType, TaskTypeId,
};
use taskstream::stream::StreamDesc;

const N: u64 = 4096;
const THRESHOLD: i64 = 500;
const DATA: u64 = 0;
const RESULT: u64 = 10_000;

struct FilterReduce {
    data: Vec<i64>,
}

impl Program for FilterReduce {
    fn name(&self) -> &str {
        "filter_reduce"
    }

    fn task_types(&self) -> Vec<TaskType> {
        // stage 1: emit v where v > threshold (a predicated output)
        let mut f = DfgBuilder::new("filter");
        let v = f.input();
        let thr = f.param(0);
        let keep = f.lt(thr, v);
        f.output_when(v, keep);

        // stage 2: running sum, emitted once on the final element
        let mut r = DfgBuilder::new("reduce");
        let x = r.input();
        let sum = r.acc(x);
        r.output_on_last(sum);

        vec![
            TaskType::new("filter", TaskKernel::dfg(f.finish().unwrap())),
            TaskType::new("reduce", TaskKernel::dfg(r.finish().unwrap())),
        ]
    }

    fn memory_image(&self) -> MemoryImage {
        MemoryImage::new()
            .dram_segment(DATA, self.data.clone())
            .dram_segment(RESULT, vec![0])
    }

    fn initial(&mut self, s: &mut Spawner) {
        let pipe = s.pipe(N); // at most N survivors
        s.spawn(
            TaskInstance::new(TaskTypeId(0))
                .params([THRESHOLD])
                .input_stream(StreamDesc::dram(DATA, N))
                .output_pipe(pipe),
        );
        s.spawn(
            TaskInstance::new(TaskTypeId(1))
                .input_pipe(pipe)
                .output_memory(StreamDesc::dram(RESULT, 1), WriteMode::Overwrite)
                .work_hint(N),
        );
    }

    fn on_complete(&mut self, _done: &CompletedTask, _s: &mut Spawner) {}
}

fn main() {
    let data: Vec<i64> = (0..N as i64).map(|i| (i * 37) % 1000).collect();
    let expect: i64 = data.iter().filter(|&&v| v > THRESHOLD).sum();

    let mut program = FilterReduce { data };
    let report = Accelerator::new(DeltaConfig::delta(4))
        .run(&mut program)
        .expect("run succeeds");

    let got = report.dram(RESULT);
    println!("filter+reduce over {N} elements: {got} (expected {expect})");
    assert_eq!(got, expect);
    println!(
        "finished in {} cycles; direct pipes used: {}",
        report.cycles,
        report.stats.sum_matching("pipes_direct")
    );
}
