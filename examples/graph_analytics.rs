//! Graph-analytics scenario: BFS and SSSP on Delta vs. the
//! static-parallel design, showing why dynamic task creation is the
//! decisive mechanism for frontier algorithms.
//!
//! The task-parallel formulation touches each edge O(1) times; the
//! static-parallel design must sweep *every* edge *every* level/round,
//! because without hardware tasks there is nothing to carry the
//! frontier.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use taskstream::delta::{Accelerator, DeltaConfig};
use taskstream::workloads::{bfs::Bfs, sssp::Sssp, Workload};

fn compare(wl: &dyn Workload) {
    let mut task_parallel = wl.make_program();
    let delta = Accelerator::new(DeltaConfig::delta_8_tiles())
        .run(task_parallel.as_mut())
        .expect("delta run");
    wl.validate(&delta).expect("delta results");

    let mut sweeps = wl.make_baseline_program();
    let baseline = Accelerator::new(DeltaConfig::static_parallel_8_tiles())
        .run(sweeps.as_mut())
        .expect("baseline run");
    wl.validate(&baseline).expect("baseline results");

    println!("--- {} ---", wl.name());
    println!(
        "  delta  (frontier tasks): {:>9} cycles, {:>6} tasks",
        delta.cycles, delta.tasks_completed
    );
    println!(
        "  static (full sweeps):    {:>9} cycles, {:>6} tasks",
        baseline.cycles, baseline.tasks_completed
    );
    println!(
        "  speedup {:.2}x  (dram words: {:.0} vs {:.0})",
        baseline.cycles as f64 / delta.cycles as f64,
        delta.dram_words(),
        baseline.dram_words(),
    );
}

fn main() {
    println!("graph analytics on Delta (8 tiles) vs static-parallel design\n");
    compare(&Bfs::small(42));
    compare(&Sssp::small(42));
}
