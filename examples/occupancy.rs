//! Visualize tile occupancy over a run: Delta's recovered structure
//! keeps the machine full; the static-parallel design shows stragglers
//! and sweep troughs.
//!
//! ```text
//! cargo run --release --example occupancy [spmv|bfs|sssp|merge_sort]
//! ```

use taskstream::delta::{Accelerator, DeltaConfig};
use taskstream::workloads::{bfs::Bfs, merge_sort::MergeSort, spmv::Spmv, sssp::Sssp, Workload};

const TILES: usize = 8;
const WIDTH: usize = 72;

fn show(wl: &dyn Workload) {
    println!(
        "--- {} ({TILES} tiles, one glyph ≈ 1/{WIDTH} of the run) ---",
        wl.name()
    );
    for (design, cfg, baseline) in [
        ("delta ", DeltaConfig::delta(TILES), false),
        ("static", DeltaConfig::static_parallel(TILES), true),
    ] {
        let mut p = if baseline {
            wl.make_baseline_program()
        } else {
            wl.make_program()
        };
        let r = Accelerator::new(cfg).run(p.as_mut()).expect("run");
        wl.validate(&r).expect("results");
        println!(
            "  {design} |{:<WIDTH$}| {:>8} cycles",
            r.sparkline(TILES, WIDTH),
            r.cycles
        );
    }
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let wls: Vec<Box<dyn Workload>> = match which.as_str() {
        "spmv" => vec![Box::new(Spmv::small(42))],
        "bfs" => vec![Box::new(Bfs::small(42))],
        "sssp" => vec![Box::new(Sssp::small(42))],
        "merge_sort" => vec![Box::new(MergeSort::small(42))],
        _ => vec![
            Box::new(Spmv::small(42)),
            Box::new(Bfs::small(42)),
            Box::new(MergeSort::small(42)),
        ],
    };
    for wl in &wls {
        show(wl.as_ref());
    }
}
