//! Quickstart: run one task-parallel workload on Delta and on the
//! static-parallel baseline, validate both, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taskstream::delta::{Accelerator, DeltaConfig};
use taskstream::workloads::{spmv::Spmv, Workload};

fn main() {
    // A seeded sparse matrix-vector multiply with power-law row lengths
    // — the classic load-imbalance workload.
    let workload = Spmv::small(42);
    println!(
        "spmv: {} rows, {} non-zeros, {} tasks",
        workload.n,
        workload.nnz(),
        workload.info().tasks
    );

    // Delta: the TaskStream accelerator (work-aware balancing,
    // pipelined dependences, multicast).
    let mut program = workload.make_program();
    let delta = Accelerator::new(DeltaConfig::delta_8_tiles())
        .run(program.as_mut())
        .expect("delta run");
    workload.validate(&delta).expect("delta results correct");

    // The equivalent static-parallel design: same tiles, fabric, memory
    // — tasks hashed to fixed owners, dependences through DRAM.
    let mut baseline = workload.make_baseline_program();
    let static_run = Accelerator::new(DeltaConfig::static_parallel_8_tiles())
        .run(baseline.as_mut())
        .expect("baseline run");
    workload
        .validate(&static_run)
        .expect("baseline results correct");

    println!(
        "delta:  {:>9} cycles (imbalance {:.2})",
        delta.cycles,
        delta.load_imbalance()
    );
    println!(
        "static: {:>9} cycles (imbalance {:.2})",
        static_run.cycles,
        static_run.load_imbalance()
    );
    println!(
        "speedup: {:.2}x",
        static_run.cycles as f64 / delta.cycles as f64
    );
}
