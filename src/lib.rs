//! # TaskStream / Delta — a reproduction in Rust
//!
//! This facade crate re-exports the whole workspace implementing the
//! ASPLOS 2022 paper *"TaskStream: accelerating task-parallel workloads
//! by recovering program structure"* (Dadu & Nowatzki): a task execution
//! model for reconfigurable dataflow accelerators, the **Delta**
//! accelerator built on it, an equivalent static-parallel baseline, and
//! the workload suite plus harness that regenerates the paper's
//! evaluation.
//!
//! ## Crate map
//!
//! | Module | Source crate | Contents |
//! |--------|--------------|----------|
//! | [`sim`] | `ts-sim` | simulation kernel: cycles, FIFOs, stats, seeded RNG |
//! | [`dfg`] | `ts-dfg` | dataflow-graph IR + functional interpreter |
//! | [`cgra`] | `ts-cgra` | CGRA fabric, place-and-route mapper, II timing |
//! | [`mem`] | `ts-mem` | banked DRAM + scratchpad models |
//! | [`noc`] | `ts-noc` | 2D-mesh NoC with XY routing and tree multicast |
//! | [`stream`] | `ts-stream` | stream descriptors, ports, stream engines |
//! | [`model`] | `taskstream-model` | **the TaskStream execution model** |
//! | [`delta`] | `ts-delta` | the Delta accelerator + static baseline + area model |
//! | [`workloads`] | `ts-workloads` | task-parallel workload suite |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use taskstream::delta::{Accelerator, DeltaConfig};
//! use taskstream::workloads::{spmv::Spmv, Workload};
//!
//! let wl = Spmv::tiny(7); // seeded test-sized instance
//! let mut program = wl.make_program();
//! let mut accel = Accelerator::new(DeltaConfig::delta(4));
//! let run = accel.run(program.as_mut()).unwrap();
//! wl.validate(&run).unwrap();
//! println!("finished in {} cycles", run.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use taskstream_model as model;
pub use ts_cgra as cgra;
pub use ts_delta as delta;
pub use ts_dfg as dfg;
pub use ts_mem as mem;
pub use ts_noc as noc;
pub use ts_sim as sim;
pub use ts_stream as stream;
pub use ts_workloads as workloads;
