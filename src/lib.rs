//! # TaskStream / Delta — a reproduction in Rust
//!
//! This facade crate re-exports the whole workspace implementing the
//! ASPLOS 2022 paper *"TaskStream: accelerating task-parallel workloads
//! by recovering program structure"* (Dadu & Nowatzki): a task execution
//! model for reconfigurable dataflow accelerators, the **Delta**
//! accelerator built on it, an equivalent static-parallel baseline, and
//! the workload suite plus harness that regenerates the paper's
//! evaluation.
//!
//! ## Crate map
//!
//! | Module | Source crate | Contents |
//! |--------|--------------|----------|
//! | [`sim`] | `ts-sim` | simulation kernel: cycles, FIFOs, stats, seeded RNG |
//! | [`dfg`] | `ts-dfg` | dataflow-graph IR + functional interpreter |
//! | [`cgra`] | `ts-cgra` | CGRA fabric, place-and-route mapper, II timing |
//! | [`mem`] | `ts-mem` | banked DRAM + scratchpad models |
//! | [`noc`] | `ts-noc` | 2D-mesh NoC with XY routing and tree multicast |
//! | [`stream`] | `ts-stream` | stream descriptors, ports, stream engines |
//! | [`model`] | `taskstream-model` | **the TaskStream execution model** |
//! | [`graph`] | `ts-graph` | declarative task-graph frontend ([`GraphSpec`] → [`model::Program`](model::Program)) |
//! | [`delta`] | `ts-delta` | the Delta accelerator + static baseline + area model |
//! | [`workloads`] | `ts-workloads` | task-parallel workload suite |
//! | [`bench`] | `ts-bench` | evaluation harness: experiments, goldens, tracing |
//!
//! ## The curated surface
//!
//! Everything a typical consumer needs is re-exported at the crate
//! root, so most programs never name the sub-crates:
//!
//! * author: [`GraphSpec`] declares a workload as named [`Stage`]s,
//!   typed stream edges ([`Link`]) and spawn rules ([`SpawnRule`]);
//!   [`GraphSpec::compile`] lowers it to a runnable
//!   [`Program`](model::Program);
//! * configure: [`DeltaConfig`] presets ([`DeltaConfig::delta`],
//!   [`DeltaConfig::static_baseline`], [`DeltaConfig::ablation`]) and
//!   the fluent [`DeltaConfigBuilder`] ([`DeltaConfig::builder`]),
//!   with [`Features`] toggles and [`FaultsConfig`] fault injection;
//! * run: [`Accelerator::run`], yielding a [`RunReport`] (cycles,
//!   stats, final DRAM, [`SimProfile`], [`FaultReport`]) or a
//!   [`RunError`];
//! * check: the [`oracle`] executes the same program untimed and
//!   [`oracle::check_equivalence`] proves the timed run computed the
//!   same thing;
//! * reproduce: [`experiments`] regenerates the paper's tables and
//!   figures (`experiments::run`, `experiments::ALL`), which is what
//!   the `repro` binary drives.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use taskstream::{Accelerator, DeltaConfig};
//! use taskstream::workloads::{spmv::Spmv, Workload};
//!
//! let wl = Spmv::tiny(7); // seeded test-sized instance
//! let mut program = wl.make_program();
//! let mut accel = Accelerator::new(DeltaConfig::delta(4));
//! let run = accel.run(program.as_mut()).unwrap();
//! wl.validate(&run).unwrap();
//! println!("finished in {} cycles", run.cycles);
//! ```
//!
//! And a fault-injected run through the builder:
//!
//! ```
//! use taskstream::{Accelerator, DeltaConfig, FaultsConfig};
//! use taskstream::workloads::{spmv::Spmv, Workload};
//!
//! let wl = Spmv::tiny(7);
//! let cfg = DeltaConfig::builder(4)
//!     .faults(FaultsConfig::chaos())
//!     .seed(7)
//!     .build();
//! let run = Accelerator::new(cfg).run(wl.make_program().as_mut()).unwrap();
//! wl.validate(&run).unwrap(); // faults perturb timing, never function
//! assert_eq!(run.faults.recovered(), run.faults.tasks_redispatched);
//! ```
//!
//! ## Declaring a pipeline
//!
//! New workloads are written declaratively: a [`GraphSpec`] names the
//! stages, edges and spawn rules, and compiles to the same
//! [`Program`](model::Program) the simulator, oracle and profilers
//! consume. A two-stage pipeline — a scanner streams a DRAM array
//! through an identity kernel into a pipe, and an aggregator folds the
//! pipe into one output word:
//!
//! ```
//! use taskstream::model::{MemoryImage, TaskKernel};
//! use taskstream::{Accelerator, DeltaConfig, GraphSpec, Link, SpawnRule, Stage, TaskSketch};
//! use taskstream::mem::WriteMode;
//! use taskstream::stream::StreamDesc;
//!
//! let pass = {
//!     let mut b = taskstream::dfg::DfgBuilder::new("pass");
//!     let x = b.input();
//!     b.output(x);
//!     b.finish().unwrap()
//! };
//! let sum = {
//!     let mut b = taskstream::dfg::DfgBuilder::new("sum");
//!     let x = b.input();
//!     let s = b.acc(x);
//!     b.output_on_last(s);
//!     b.finish().unwrap()
//! };
//!
//! let data: Vec<i64> = (1..=16).collect();
//! let mut g = GraphSpec::new("pipeline").memory(
//!     MemoryImage::new()
//!         .dram_segment(0, data.clone())
//!         .dram_segment(16, vec![0]),
//! );
//! let scan = g.stage(Stage::new(
//!     "scan",
//!     TaskKernel::dfg(pass),
//!     SpawnRule::PerElement { count: 1 },
//!     |_cx| {
//!         TaskSketch::new()
//!             .input_stream(StreamDesc::dram(0, 16))
//!             .output_downstream()
//!     },
//! ));
//! let agg = g.stage(Stage::new(
//!     "agg",
//!     TaskKernel::dfg(sum),
//!     SpawnRule::PerElement { count: 1 },
//!     |_cx| {
//!         TaskSketch::new()
//!             .input_upstream(0)
//!             .output_memory(StreamDesc::dram(16, 1), WriteMode::Overwrite)
//!     },
//! ));
//! g.edge(scan, agg, Link::Pipe { capacity: 16 });
//!
//! let mut program = g.compile().unwrap();
//! let report = Accelerator::new(DeltaConfig::delta(2)).run(&mut program).unwrap();
//! assert_eq!(report.dram(16), data.iter().sum::<i64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use taskstream_model as model;
pub use ts_bench as bench;
pub use ts_cgra as cgra;
pub use ts_delta as delta;
pub use ts_dfg as dfg;
pub use ts_graph as graph;
pub use ts_mem as mem;
pub use ts_noc as noc;
pub use ts_sim as sim;
pub use ts_stream as stream;
pub use ts_workloads as workloads;

pub use ts_bench::experiments;
pub use ts_delta::{
    oracle, Accelerator, DeltaConfig, DeltaConfigBuilder, FaultReport, FaultsConfig, Features,
    RunError, RunReport, SimProfile,
};
pub use ts_graph::{
    compile, CompiledGraph, Emission, GraphError, GraphSpec, Link, SpawnRule, Stage, TaskSketch,
};
