#!/usr/bin/env python3
"""Sweep comparison for CI: advisory wall-clock, blocking determinism.

Usage: bench_delta.py [--gate] <reference.json> <current.json>

Both inputs are `repro --bench-json` outputs. Two kinds of numbers are
compared, and they are treated very differently:

* **Advisory (never blocks):** wall-clock seconds and the
  work-stealing pool's steal/park counts. These vary with runner speed
  and thread timing, so they are printed for the job log only, in a
  clearly labeled non-blocking section.

* **Deterministic (blocks under --gate):** the experiment id set,
  per-experiment simulation counts, every component tick/skip/bulk
  counter in the embedded per-experiment and whole-run profiles, the
  per-tenant tallies the multi-tenant experiments emit (admission,
  completion and gate-hold counts), and the result-cache
  hit/miss/store counters. For a serial cold-cache
  run (`--jobs 1 --no-cache`, as the CI gate leg uses) these are exact
  functions of the code, so any delta means the simulator's
  work-avoidance behavior actually changed — not that the machine was
  slow. Such a change must either be a bug or come with a re-blessed
  `goldens/BENCH_sweep.tiny.json` (see CONTRIBUTING.md).

Without --gate the script always exits 0 (the pre-gate behavior, kept
for local use). With --gate it exits 1 when any deterministic counter
drifts or an input is unreadable.
"""

import json
import sys

COMPONENT_TICKS = ("tile_ticks", "mem_ticks", "noc_ticks")
ADVISORY_HOST = ("steals", "parks")
GATED_HOST = ("cache_hits", "cache_misses", "cache_stores")


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def pct(ref, cur):
    return f"{100.0 * (cur - ref) / ref:+.0f}%" if ref > 0 else "n/a"


def wall_clock_table(ref_doc, cur_doc):
    print("wall-clock vs reference (ADVISORY, non-blocking):")
    print(f"  {'phase':<16} {'ref s':>8} {'cur s':>8} {'delta':>8}")
    for key, label in (("sweep_seconds", "sweep"), ("total_seconds", "total")):
        r, c = ref_doc.get(key), cur_doc.get(key)
        if r is None or c is None:
            continue
        print(f"  {label:<16} {r:>8.3f} {c:>8.3f} {pct(r, c):>8}")


def host_table(ref_doc, cur_doc):
    """Host-runtime counters: pool steals/parks and cache traffic."""
    ref, cur = ref_doc.get("host"), cur_doc.get("host")
    if not isinstance(ref, dict) or not isinstance(cur, dict):
        return
    print("host runtime counters vs reference:")
    print(f"  {'counter':<16} {'ref':>10} {'cur':>10} {'delta':>8}")
    for key in ADVISORY_HOST + GATED_HOST:
        r, c = ref.get(key), cur.get(key)
        if r is None or c is None:
            continue
        tag = " (advisory)" if key in ADVISORY_HOST else ""
        print(f"  {key:<16} {r:>10} {c:>10} {pct(r, c):>8}{tag}")


def tick_table(ref_doc, cur_doc):
    """Per-experiment component-tick comparison from embedded profiles."""
    ref = {e["id"]: e.get("profile", {}) for e in ref_doc.get("experiments", [])}
    cur = {e["id"]: e.get("profile", {}) for e in cur_doc.get("experiments", [])}
    shared = [i for i in ref if i in cur]
    if not any(ref[i] and cur[i] for i in shared):
        return
    print("component dense ticks vs reference (deterministic):")
    header = " ".join(f"{c.split('_')[0] + ' ref':>12} {'cur':>12} {'delta':>7}"
                      for c in COMPONENT_TICKS)
    print(f"  {'experiment':<16} {header}")
    for exp_id in shared:
        cells = []
        for comp in COMPONENT_TICKS:
            r, c = ref[exp_id].get(comp), cur[exp_id].get(comp)
            if r is None or c is None:
                cells.append(f"{'-':>12} {'-':>12} {'n/a':>7}")
                continue
            delta = pct(r, c) if r is not None else "n/a"
            cells.append(f"{r:>12} {c:>12} {delta:>7}")
        print(f"  {exp_id:<16} {' '.join(cells)}")
    gone = [i for i in ref if i not in cur]
    new = [i for i in cur if i not in ref]
    if gone:
        print(f"  (gone from current: {', '.join(gone)})")
    if new:
        print(f"  (new in current: {', '.join(new)})")


def profile_drift(label, ref, cur):
    """Lists every counter that differs between two profile objects."""
    fails = []
    for key in sorted(set(ref) | set(cur)):
        r, c = ref.get(key), cur.get(key)
        if r != c:
            fails.append(f"{label}: {key} drifted ({r} -> {c})")
    return fails


def gate_failures(ref_doc, cur_doc):
    """Every deterministic-counter mismatch, as printable strings."""
    fails = []
    for key in ("scale", "simulations"):
        r, c = ref_doc.get(key), cur_doc.get(key)
        if r != c:
            fails.append(f"{key} drifted ({r} -> {c})")

    ref_host = ref_doc.get("host") or {}
    cur_host = cur_doc.get("host") or {}
    for key in GATED_HOST:
        r, c = ref_host.get(key), cur_host.get(key)
        if r != c:
            fails.append(f"host.{key} drifted ({r} -> {c})")

    fails += profile_drift("whole-run profile",
                           ref_doc.get("profile") or {},
                           cur_doc.get("profile") or {})

    ref_exp = {e["id"]: e for e in ref_doc.get("experiments", [])}
    cur_exp = {e["id"]: e for e in cur_doc.get("experiments", [])}
    for exp_id in sorted(set(ref_exp) - set(cur_exp)):
        fails.append(f"experiment {exp_id}: gone from current run")
    for exp_id in sorted(set(cur_exp) - set(ref_exp)):
        fails.append(f"experiment {exp_id}: not in reference "
                     "(re-bless goldens/BENCH_sweep.tiny.json)")
    for exp_id in sorted(set(ref_exp) & set(cur_exp)):
        r, c = ref_exp[exp_id], cur_exp[exp_id]
        if r.get("sims") != c.get("sims"):
            fails.append(f"experiment {exp_id}: simulation count drifted "
                         f"({r.get('sims')} -> {c.get('sims')})")
        fails += profile_drift(f"experiment {exp_id}",
                               r.get("profile") or {},
                               c.get("profile") or {})
        fails += profile_drift(f"experiment {exp_id} tallies",
                               r.get("tallies") or {},
                               c.get("tallies") or {})
    return fails


def main(argv):
    args = list(argv[1:])
    gate = "--gate" in args
    if gate:
        args.remove("--gate")
    if len(args) != 2:
        print(f"usage: {argv[0]} [--gate] <reference.json> <current.json>")
        return 1 if gate else 0
    try:
        ref_doc = load(args[0])
        cur_doc = load(args[1])
    except (OSError, ValueError) as e:
        print(f"bench_delta: cannot compare ({e})")
        return 1 if gate else 0

    print(f"reference: {args[0]}")
    try:
        wall_clock_table(ref_doc, cur_doc)
        host_table(ref_doc, cur_doc)
        tick_table(ref_doc, cur_doc)
    except (TypeError, KeyError, ValueError) as e:
        print(f"bench_delta: malformed input ({e}); skipping the rest")
        return 1 if gate else 0

    if not gate:
        print("(informational only; run with --gate to block on "
              "deterministic-counter drift)")
        return 0

    fails = gate_failures(ref_doc, cur_doc)
    if fails:
        print(f"\nGATE FAILED: {len(fails)} deterministic counter(s) drifted:")
        for f in fails:
            print(f"  {f}")
        print("\nIf this change is intentional, regenerate the reference:\n"
              "  cargo run --release -p ts-bench --bin repro -- goldens bless"
              " --tiny\n"
              "  cargo run --release -p ts-bench --bin repro -- sweep --tiny"
              " --jobs 1 --no-cache --bench-json goldens/BENCH_sweep.tiny.json\n"
              "(wall-clock fields in the reference are advisory and may be"
              " left as-is; see CONTRIBUTING.md)")
        return 1
    print("\ngate OK: deterministic counters match the reference "
          "(wall clock and steal/park counts are advisory)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
