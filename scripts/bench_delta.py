#!/usr/bin/env python3
"""Non-blocking sweep comparison for CI.

Usage: bench_delta.py <reference.json> <current.json>

Both inputs are `repro --bench-json` outputs. Prints the sweep and
total wall-clock delta of the current run against the committed
reference, the host-runtime counter deltas (work-stealing pool steals
and parks, result-cache hits/misses/stores), then the per-component
dense-tick deltas (tile/mem/noc ticks from the embedded profiles).
Wall clock varies with runner speed, but tick counts are
deterministic: a tick delta means the scheduler's work-avoidance
actually changed, not that the machine was slow. Always exits 0: this
exists so a simulator-performance regression is visible in the job
log, not to block the merge (correctness is gated separately by
`repro goldens check`).
"""

import json
import sys

COMPONENT_TICKS = ("tile_ticks", "mem_ticks", "noc_ticks")
HOST_COUNTERS = ("steals", "parks", "cache_hits", "cache_misses", "cache_stores")


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def pct(ref, cur):
    return f"{100.0 * (cur - ref) / ref:+.0f}%" if ref > 0 else "n/a"


def wall_clock_table(ref_doc, cur_doc):
    print("wall-clock vs reference:")
    print(f"  {'phase':<16} {'ref s':>8} {'cur s':>8} {'delta':>8}")
    for key, label in (("sweep_seconds", "sweep"), ("total_seconds", "total")):
        r, c = ref_doc.get(key), cur_doc.get(key)
        if r is None or c is None:
            continue
        print(f"  {label:<16} {r:>8.3f} {c:>8.3f} {pct(r, c):>8}")


def host_table(ref_doc, cur_doc):
    """Host-runtime counters: pool steals/parks and cache traffic."""
    ref, cur = ref_doc.get("host"), cur_doc.get("host")
    if not isinstance(ref, dict) or not isinstance(cur, dict):
        return
    print("host runtime counters vs reference:")
    print(f"  {'counter':<16} {'ref':>10} {'cur':>10} {'delta':>8}")
    for key in HOST_COUNTERS:
        r, c = ref.get(key), cur.get(key)
        if r is None or c is None:
            continue
        print(f"  {key:<16} {r:>10} {c:>10} {pct(r, c):>8}")


def tick_table(ref_doc, cur_doc):
    """Per-experiment component-tick comparison from embedded profiles."""
    ref = {e["id"]: e.get("profile", {}) for e in ref_doc.get("experiments", [])}
    cur = {e["id"]: e.get("profile", {}) for e in cur_doc.get("experiments", [])}
    shared = [i for i in ref if i in cur]
    if not any(ref[i] and cur[i] for i in shared):
        return
    print("component dense ticks vs reference (deterministic):")
    header = " ".join(f"{c.split('_')[0] + ' ref':>12} {'cur':>12} {'delta':>7}"
                      for c in COMPONENT_TICKS)
    print(f"  {'experiment':<16} {header}")
    for exp_id in shared:
        cells = []
        for comp in COMPONENT_TICKS:
            r, c = ref[exp_id].get(comp), cur[exp_id].get(comp)
            if r is None or c is None:
                cells.append(f"{'-':>12} {'-':>12} {'n/a':>7}")
                continue
            delta = pct(r, c) if r is not None else "n/a"
            cells.append(f"{r:>12} {c:>12} {delta:>7}")
        print(f"  {exp_id:<16} {' '.join(cells)}")
    gone = [i for i in ref if i not in cur]
    new = [i for i in cur if i not in ref]
    if gone:
        print(f"  (gone from current: {', '.join(gone)})")
    if new:
        print(f"  (new in current: {', '.join(new)})")


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <reference.json> <current.json>")
        return 0
    try:
        ref_doc = load(argv[1])
        cur_doc = load(argv[2])
    except (OSError, ValueError) as e:
        print(f"bench_delta: cannot compare ({e}); skipping")
        return 0

    print(f"reference: {argv[1]}")
    try:
        wall_clock_table(ref_doc, cur_doc)
        host_table(ref_doc, cur_doc)
        tick_table(ref_doc, cur_doc)
    except (TypeError, KeyError, ValueError) as e:
        print(f"bench_delta: malformed input ({e}); skipping the rest")
    print("(informational only; this step never fails the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
