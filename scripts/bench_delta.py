#!/usr/bin/env python3
"""Non-blocking per-experiment wall-clock comparison for CI.

Usage: bench_delta.py <reference.json> <current.json>

Both inputs are `repro --bench-json` outputs. Prints the per-experiment
and total wall-clock delta of the current run against the committed
reference, then the per-component dense-tick deltas (tile/mem/noc ticks
from the embedded profiles). Wall clock varies with runner speed, but
tick counts are deterministic: a tick delta means the scheduler's
work-avoidance actually changed, not that the machine was slow. Always
exits 0: this exists so a simulator-performance regression is visible
in the job log, not to block the merge (correctness is gated separately
by `repro --check-goldens`).
"""

import json
import sys

COMPONENT_TICKS = ("tile_ticks", "mem_ticks", "noc_ticks")


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return doc, {e["id"]: e["seconds"] for e in doc.get("experiments", [])}


def tick_table(ref_doc, cur_doc):
    """Per-experiment component-tick comparison from embedded profiles."""
    ref = {e["id"]: e.get("profile", {}) for e in ref_doc.get("experiments", [])}
    cur = {e["id"]: e.get("profile", {}) for e in cur_doc.get("experiments", [])}
    shared = [i for i in ref if i in cur]
    if not any(ref[i] and cur[i] for i in shared):
        return
    print("component dense ticks vs reference (deterministic):")
    header = " ".join(f"{c.split('_')[0] + ' ref':>12} {'cur':>12} {'delta':>7}"
                      for c in COMPONENT_TICKS)
    print(f"  {'experiment':<16} {header}")
    for exp_id in shared:
        cells = []
        for comp in COMPONENT_TICKS:
            r, c = ref[exp_id].get(comp), cur[exp_id].get(comp)
            if r is None or c is None:
                cells.append(f"{'-':>12} {'-':>12} {'n/a':>7}")
                continue
            delta = f"{100.0 * (c - r) / r:+.0f}%" if r > 0 else "n/a"
            cells.append(f"{r:>12} {c:>12} {delta:>7}")
        print(f"  {exp_id:<16} {' '.join(cells)}")


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <reference.json> <current.json>")
        return 0
    try:
        ref_doc, ref = load(argv[1])
        cur_doc, cur = load(argv[2])
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_delta: cannot compare ({e}); skipping")
        return 0

    print(f"wall-clock vs reference ({argv[1]}):")
    print(f"  {'experiment':<16} {'ref s':>8} {'cur s':>8} {'delta':>8}")
    for exp_id in ref:
        if exp_id not in cur:
            print(f"  {exp_id:<16} {ref[exp_id]:>8.3f} {'-':>8} {'gone':>8}")
            continue
        r, c = ref[exp_id], cur[exp_id]
        delta = f"{100.0 * (c - r) / r:+.0f}%" if r > 0 else "n/a"
        print(f"  {exp_id:<16} {r:>8.3f} {c:>8.3f} {delta:>8}")
    for exp_id in cur:
        if exp_id not in ref:
            print(f"  {exp_id:<16} {'-':>8} {cur[exp_id]:>8.3f} {'new':>8}")

    rt = ref_doc.get("total_seconds", 0.0)
    ct = cur_doc.get("total_seconds", 0.0)
    total_delta = f"{100.0 * (ct - rt) / rt:+.0f}%" if rt > 0 else "n/a"
    print(f"  {'total':<16} {rt:>8.3f} {ct:>8.3f} {total_delta:>8}")
    tick_table(ref_doc, cur_doc)
    print("(informational only; this step never fails the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
