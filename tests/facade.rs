//! Smoke tests of the facade crate's surface: every re-export is
//! usable and the analytical models compose through it.

use taskstream::cgra::{Fabric, FabricConfig};
use taskstream::delta::{area, energy, Accelerator, DeltaConfig};
use taskstream::dfg::DfgBuilder;
use taskstream::sim::Cycle;
use taskstream::workloads::{gemm::Gemm, Workload};

#[test]
fn facade_reexports_compose() {
    // dfg -> cgra through the facade paths
    let mut b = DfgBuilder::new("k");
    let x = b.input();
    let y = b.abs(x);
    b.output(y);
    let dfg = b.finish().unwrap();
    assert!(dfg.to_dot().contains("digraph"));
    let mapping = Fabric::new(FabricConfig::default()).map(&dfg, 1).unwrap();
    assert!(mapping.timing().ii >= 1);

    // sim primitives
    assert_eq!(Cycle::new(1) + Cycle::new(2), Cycle::new(3));

    // a full run + both analytical models
    let cfg = DeltaConfig::delta(2);
    let wl = Gemm::tiny(3);
    let mut program = wl.make_program();
    let report = Accelerator::new(cfg.clone()).run(program.as_mut()).unwrap();
    wl.validate(&report).unwrap();

    let a = area::breakdown(&cfg);
    assert!(a.taskstream_overhead() > 0.0 && a.taskstream_overhead() < 0.1);
    let e = energy::breakdown(&cfg, &report);
    assert!(e.total_uj() > 0.0);
    assert!(!report.sparkline(2, 16).is_empty() || report.cycles < 256);
}
