//! Cross-crate integration: every workload, both designs, end-to-end.

use taskstream::delta::{Accelerator, DeltaConfig, Features};
use taskstream::sim::stats::geomean;
use taskstream::workloads::{suite, Scale, Workload};

fn run(wl: &dyn Workload, cfg: DeltaConfig, baseline: bool) -> taskstream::delta::RunReport {
    let mut p = if baseline {
        wl.make_baseline_program()
    } else {
        wl.make_program()
    };
    let r = Accelerator::new(cfg)
        .run(p.as_mut())
        .unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
    wl.validate(&r)
        .unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
    r
}

#[test]
fn every_workload_validates_on_delta() {
    for wl in suite(Scale::Tiny, 7) {
        run(wl.as_ref(), DeltaConfig::delta(8), false);
    }
}

#[test]
fn every_workload_validates_on_the_static_baseline() {
    for wl in suite(Scale::Tiny, 8) {
        run(wl.as_ref(), DeltaConfig::static_parallel(8), true);
    }
}

#[test]
fn every_workload_validates_with_each_mechanism_alone() {
    let singles = [
        Features {
            work_aware: true,
            pipelining: false,
            multicast: false,
        },
        Features {
            work_aware: false,
            pipelining: true,
            multicast: false,
        },
        Features {
            work_aware: false,
            pipelining: false,
            multicast: true,
        },
    ];
    for features in singles {
        for wl in suite(Scale::Tiny, 9) {
            run(
                wl.as_ref(),
                DeltaConfig::delta(4).with_features(features),
                false,
            );
        }
    }
}

#[test]
fn suite_is_deterministic() {
    for wl in suite(Scale::Tiny, 10) {
        let a = run(wl.as_ref(), DeltaConfig::delta(4), false);
        let b = run(wl.as_ref(), DeltaConfig::delta(4), false);
        assert_eq!(a.cycles, b.cycles, "{} not deterministic", wl.name());
        assert_eq!(a.tasks_completed, b.tasks_completed);
    }
}

#[test]
fn delta_never_loses_to_the_baseline_meaningfully() {
    // Delta may tie the baseline on regular workloads but must never be
    // clearly slower anywhere.
    for wl in suite(Scale::Tiny, 11) {
        let d = run(wl.as_ref(), DeltaConfig::delta(8), false);
        let s = run(wl.as_ref(), DeltaConfig::static_parallel(8), true);
        assert!(
            (d.cycles as f64) <= s.cycles as f64 * 1.1,
            "{}: delta {} vs static {}",
            wl.name(),
            d.cycles,
            s.cycles
        );
    }
}

#[test]
fn headline_shape_holds_at_tiny_scale() {
    let mut speedups = Vec::new();
    for wl in suite(Scale::Tiny, 42) {
        let d = run(wl.as_ref(), DeltaConfig::delta(8), false);
        let s = run(wl.as_ref(), DeltaConfig::static_parallel(8), true);
        speedups.push(s.cycles as f64 / d.cycles as f64);
    }
    let g = geomean(&speedups);
    assert!(g >= 1.2, "geomean speedup collapsed to {g:.2}");
}

#[test]
fn workloads_scale_down_to_one_tile() {
    for wl in suite(Scale::Tiny, 13) {
        run(wl.as_ref(), DeltaConfig::delta(1), false);
    }
}

#[test]
fn workloads_scale_up_to_sixteen_tiles() {
    for wl in suite(Scale::Tiny, 14) {
        run(wl.as_ref(), DeltaConfig::delta(16), false);
    }
}

#[test]
fn more_tiles_never_hurt_much() {
    for wl in suite(Scale::Tiny, 15) {
        let two = run(wl.as_ref(), DeltaConfig::delta(2), false);
        let eight = run(wl.as_ref(), DeltaConfig::delta(8), false);
        assert!(
            (eight.cycles as f64) < two.cycles as f64 * 1.25,
            "{}: 8 tiles ({}) much slower than 2 ({})",
            wl.name(),
            eight.cycles,
            two.cycles
        );
    }
}
