//! Property-based end-to-end tests: randomly generated task programs
//! must compute exactly what a direct evaluation computes, on every
//! design point.

use proptest::prelude::*;
use taskstream::delta::{Accelerator, DeltaConfig, Features};
use taskstream::dfg::DfgBuilder;
use taskstream::mem::WriteMode;
use taskstream::model::{
    CompletedTask, MemoryImage, Program, Spawner, TaskInstance, TaskKernel, TaskType, TaskTypeId,
};
use taskstream::stream::StreamDesc;

/// A randomly shaped two-phase program: independent affine "scale"
/// tasks over disjoint slices, then (optionally) a pipe into a reducer.
#[derive(Debug, Clone)]
struct RandomProgram {
    slices: Vec<Vec<i64>>,
    factors: Vec<i64>,
    reduce: bool,
}

const OUT: u64 = 100_000;
const SUMS: u64 = 200_000;

impl RandomProgram {
    fn in_base(&self, i: usize) -> u64 {
        (0..i).map(|j| self.slices[j].len() as u64).sum()
    }

    fn expected_out(&self) -> Vec<i64> {
        self.slices
            .iter()
            .zip(&self.factors)
            .flat_map(|(s, f)| s.iter().map(move |v| v.wrapping_mul(*f)))
            .collect()
    }

    fn expected_sums(&self) -> Vec<i64> {
        self.slices
            .iter()
            .zip(&self.factors)
            .map(|(s, f)| {
                s.iter()
                    .map(|v| v.wrapping_mul(*f))
                    .fold(0i64, |a, b| a.wrapping_add(b))
            })
            .collect()
    }
}

impl Program for RandomProgram {
    fn name(&self) -> &str {
        "random_program"
    }

    fn task_types(&self) -> Vec<TaskType> {
        let mut b = DfgBuilder::new("scale");
        let x = b.input();
        let f = b.param(0);
        let y = b.mul(x, f);
        b.output(y);

        let mut r = DfgBuilder::new("sum");
        let x = r.input();
        let s = r.acc(x);
        r.output_on_last(s);

        vec![
            TaskType::new("scale", TaskKernel::dfg(b.finish().unwrap())),
            TaskType::new("sum", TaskKernel::dfg(r.finish().unwrap())),
        ]
    }

    fn memory_image(&self) -> MemoryImage {
        let total: usize = self.slices.iter().map(Vec::len).sum();
        let mut img = MemoryImage::new()
            .dram_segment(OUT, vec![0; total])
            .dram_segment(SUMS, vec![0; self.slices.len()]);
        for (i, s) in self.slices.iter().enumerate() {
            img = img.dram_segment(self.in_base(i), s.clone());
        }
        img
    }

    fn initial(&mut self, s: &mut Spawner) {
        for (i, slice) in self.slices.iter().enumerate() {
            let len = slice.len() as u64;
            let base = self.in_base(i);
            let scale = TaskInstance::new(TaskTypeId(0))
                .params([self.factors[i]])
                .input_stream(StreamDesc::dram(base, len))
                .affinity(i as u64);
            if self.reduce {
                let pipe = s.pipe(len);
                s.spawn(scale.output_pipe(pipe));
                s.spawn(
                    TaskInstance::new(TaskTypeId(1))
                        .input_pipe(pipe)
                        .output_memory(StreamDesc::dram(SUMS + i as u64, 1), WriteMode::Overwrite)
                        .affinity(i as u64),
                );
            } else {
                s.spawn(
                    scale.output_memory(StreamDesc::dram(OUT + base, len), WriteMode::Overwrite),
                );
            }
        }
    }

    fn on_complete(&mut self, _d: &CompletedTask, _s: &mut Spawner) {}
}

fn slice_strategy() -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(-1000i64..1000, 1..40), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Independent scale tasks compute exact results on every design.
    #[test]
    fn scale_tasks_are_exact(
        slices in slice_strategy(),
        factors_seed in 1i64..100,
        tiles in 1usize..5,
    ) {
        let factors: Vec<i64> = (0..slices.len() as i64)
            .map(|i| (i + factors_seed) % 17 - 8)
            .collect();
        let mut p = RandomProgram { slices, factors, reduce: false };
        let expect = p.expected_out();
        let total: usize = p.slices.iter().map(Vec::len).sum();
        let r = Accelerator::new(DeltaConfig::delta(tiles)).run(&mut p).unwrap();
        prop_assert_eq!(r.dram_range(OUT, total), &expect[..]);
    }

    /// Pipe-chained reductions compute exact sums with pipelining on
    /// and off.
    #[test]
    fn piped_reductions_are_exact(
        slices in slice_strategy(),
        pipelining in prop::bool::ANY,
    ) {
        let factors: Vec<i64> = (0..slices.len() as i64).map(|i| i % 5 + 1).collect();
        let mut p = RandomProgram { slices, factors, reduce: true };
        let expect = p.expected_sums();
        let n = p.slices.len();
        let cfg = DeltaConfig::delta(4).with_features(Features {
            work_aware: true,
            pipelining,
            multicast: true,
        });
        let r = Accelerator::new(cfg).run(&mut p).unwrap();
        prop_assert_eq!(r.dram_range(SUMS, n), &expect[..]);
    }
}
